// The binary observation-trace format (src/detect/trace.*) and the
// replay path (src/detect/replay.*).
//
// Two layers of guarantees:
//  * Format: serialization round-trips bytes and events exactly, the
//    canonical form is deterministic (equal event streams -> equal
//    bytes), and truncation / corruption / foreign data are rejected at
//    parse time with TraceError.
//  * Fidelity: detection replayed from a recorded trace is byte-identical
//    to the live run that recorded it — same WindowResult sequences, same
//    MonitorStats — across static, mobile-handoff, lossy, and attacker
//    scenarios and across seeds. This is the PR's core acceptance
//    criterion: one detection implementation, two observation sources.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/replay.hpp"
#include "detect/trace.hpp"

namespace manet::detect {
namespace {

// --- Format round-trip -------------------------------------------------------

TraceHeader sample_header() {
  TraceHeader h;
  h.node = 7;
  h.start_time = 1500 * kMillisecond;
  h.params.cw_min = 15;
  h.params.use_eifs = true;
  h.targets = {3, 4, 5};
  h.timeline.retention = 10 * kSecond;
  h.timeline.current_busy = true;
  h.timeline.initial_busy = false;
  h.timeline.last_edge = 1499 * kMillisecond;
  h.timeline.cum_busy = 321 * kMillisecond;
  h.timeline.transitions = {{1 * kSecond, true}, {1499 * kMillisecond, false}};
  h.timeline.outages = {{2 * kMillisecond, 5 * kMillisecond}};
  return h;
}

std::vector<ObservationEvent> sample_events(std::size_t n) {
  std::vector<ObservationEvent> events;
  SimTime t = 1500 * kMillisecond;
  for (std::size_t i = 0; i < n; ++i) {
    ObservationEvent ev;
    switch (i % 4) {
      case 0: {
        mac::Frame rts;
        rts.type = mac::FrameType::kRts;
        rts.transmitter = 3;
        rts.receiver = 7;
        rts.duration = 500 * kMicrosecond;
        rts.seq_off = static_cast<std::uint32_t>(i % 8192);
        rts.attempt = static_cast<std::uint8_t>(1 + i % 7);
        rts.data_digest[0] = static_cast<std::uint8_t>(i);
        rts.data_digest[15] = 0xAB;
        ev = ObservationEvent::from_frame(rts, t, t + 496 * kMicrosecond);
        break;
      }
      case 1:
        ev.kind = ObservationKind::kCarrier;
        ev.rising = (i % 8) == 1;
        ev.at = t;
        break;
      case 2:
        ev.kind = ObservationKind::kOutage;
        ev.rising = (i % 8) == 2;
        ev.at = t;
        break;
      case 3:
        ev.kind = ObservationKind::kMarker;
        ev.marker_code = static_cast<std::uint32_t>(MarkerCode::kActivity);
        ev.marker_value = i % 2;
        ev.at = t;
        break;
    }
    events.push_back(ev);
    t += 100 * kMicrosecond;
  }
  return events;
}

TEST(TraceFormat, RoundTripPreservesHeaderAndEvents) {
  const TraceHeader header = sample_header();
  // More than one block's worth, plus a partial final block.
  const auto events = sample_events(TraceWriter::kBlockEvents * 2 + 37);

  TraceWriter writer(header);
  for (const auto& ev : events) writer.record(ev);
  EXPECT_EQ(writer.events_recorded(), events.size());

  MemoryTraceReader reader(writer.serialize());
  EXPECT_EQ(reader.header(), header);
  ASSERT_EQ(reader.event_count(), events.size());

  ObservationEvent ev;
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(reader.next(ev)) << "event " << i;
    EXPECT_EQ(ev, events[i]) << "event " << i;
  }
  EXPECT_FALSE(reader.next(ev));

  reader.rewind();
  ASSERT_TRUE(reader.next(ev));
  EXPECT_EQ(ev, events[0]);
}

TEST(TraceFormat, SerializationIsCanonical) {
  // Equal event streams must serialize to equal bytes (the live-vs-replay
  // CI stage diffs trace bytes, not parsed structures).
  const TraceHeader header = sample_header();
  const auto events = sample_events(700);
  TraceWriter a(header);
  TraceWriter b(header);
  for (const auto& ev : events) {
    a.record(ev);
    b.record(ev);
  }
  EXPECT_EQ(a.serialize(), b.serialize());

  // serialize() must not disturb writer state (the pending partial block).
  const auto first = a.serialize();
  EXPECT_EQ(first, a.serialize());
}

TEST(TraceFormat, FileReaderMatchesMemoryReader) {
  const TraceHeader header = sample_header();
  const auto events = sample_events(100);
  TraceWriter writer(header);
  for (const auto& ev : events) writer.record(ev);

  const std::string path = ::testing::TempDir() + "/trace_test_roundtrip.mtrace";
  writer.write_file(path);

  FileTraceReader file(path);
  MemoryTraceReader mem(writer.serialize());
  EXPECT_EQ(file.header(), mem.header());
  ASSERT_EQ(file.event_count(), mem.event_count());
  EXPECT_EQ(file.events(), mem.events());
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsTruncationAndCorruption) {
  TraceWriter writer(sample_header());
  for (const auto& ev : sample_events(50)) writer.record(ev);
  const std::vector<std::uint8_t> bytes = writer.serialize();

  // Truncation anywhere — inside the header, at a block boundary, inside
  // the final block — must throw, never yield a partial parse.
  for (std::size_t cut : {std::size_t{2}, std::size_t{10}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(MemoryTraceReader{truncated}, TraceError) << "cut=" << cut;
  }

  // A flipped payload byte fails its block CRC.
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[bytes.size() - 3] ^= 0x40;
  EXPECT_THROW(MemoryTraceReader{corrupt}, TraceError);

  // Corrupting the header payload fails the header CRC.
  corrupt = bytes;
  corrupt[14] ^= 0x01;
  EXPECT_THROW(MemoryTraceReader{corrupt}, TraceError);

  // Foreign bytes: wrong magic.
  corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_THROW(MemoryTraceReader{corrupt}, TraceError);

  EXPECT_THROW(FileTraceReader{"/nonexistent/path.mtrace"}, TraceError);
  EXPECT_NO_THROW(MemoryTraceReader{bytes});
}

// --- Live vs replay fidelity -------------------------------------------------

net::ScenarioConfig tiny_grid(double seconds, std::uint64_t seed) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 3;
  cfg.grid_cols = 4;
  cfg.num_flows = 5;
  cfg.sim_seconds = seconds;
  cfg.seed = seed;
  return cfg;
}

MonitorConfig small_monitor(std::size_t ss = 10) {
  MonitorConfig m;
  m.sample_size = ss;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
  m.fixed_contenders = 8.0;
  return m;
}

MultiDetectionConfig base_config(double seconds, std::uint64_t seed) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(seconds, seed);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor(10), small_monitor(25)};
  cfg.collect_windows = true;
  return cfg;
}

/// Runs `cfg` live with trace recording, replays the recorded traces
/// (through full serialization), and asserts every deterministic output
/// matches exactly.
void expect_replay_matches_live(MultiDetectionConfig cfg) {
  cfg.collect_windows = true;
  TraceRecorder recorder;
  cfg.trace = &recorder;
  const MultiDetectionResult live = run_multi_detection_experiment(cfg);
  ASSERT_FALSE(recorder.writers().empty());

  const MultiDetectionResult replayed =
      replay_detection(recorder, cfg.monitors, cfg.warmup_s,
                       /*collect_windows=*/true);

  EXPECT_EQ(replayed.handoffs, live.handoffs);
  EXPECT_EQ(replayed.monitor_nodes, live.monitor_nodes);
  ASSERT_EQ(replayed.per_config.size(), live.per_config.size());
  for (std::size_t i = 0; i < live.per_config.size(); ++i) {
    const DetectionResult& l = live.per_config[i];
    const DetectionResult& r = replayed.per_config[i];
    EXPECT_EQ(r.windows, l.windows) << "config " << i;
    EXPECT_EQ(r.flagged, l.flagged) << "config " << i;
    EXPECT_EQ(r.flagged_statistical, l.flagged_statistical) << "config " << i;
    EXPECT_EQ(r.stats, l.stats) << "config " << i;
    ASSERT_EQ(r.window_log.size(), l.window_log.size()) << "config " << i;
    for (std::size_t w = 0; w < l.window_log.size(); ++w) {
      EXPECT_EQ(r.window_log[w], l.window_log[w])
          << "config " << i << " window " << w;
    }
  }
}

TEST(TraceReplay, StaticGridBitIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {7u, 41u, 1234u}) {
    SCOPED_TRACE(seed);
    expect_replay_matches_live(base_config(30, seed));
  }
}

TEST(TraceReplay, HonestRunBitIdentical) {
  MultiDetectionConfig cfg = base_config(30, 23);
  cfg.pm = 0.0;
  expect_replay_matches_live(cfg);
}

TEST(TraceReplay, MobileHandoffBitIdenticalAcrossSeeds) {
  // Handoffs exercise mid-run recording starts (timeline snapshots with
  // pre-attach history) and the kActivity marker path.
  for (std::uint64_t seed : {11u, 97u}) {
    SCOPED_TRACE(seed);
    MultiDetectionConfig cfg = base_config(40, seed);
    cfg.scenario.mobility = net::MobilityKind::kRandomWaypoint;
    cfg.scenario.max_speed_mps = 20.0;
    cfg.scenario.pause_s = 0.0;
    cfg.mobile_handoff = true;
    expect_replay_matches_live(cfg);
  }
}

TEST(TraceReplay, LossyScenarioBitIdentical) {
  MultiDetectionConfig cfg = base_config(30, 77);
  cfg.scenario.faults.loss_probability = 0.10;
  cfg.scenario.faults.corrupt_probability = 0.03;
  cfg.scenario.faults.outages.push_back(
      {.node = 1, .start = 5 * kSecond, .stop = 7 * kSecond});
  expect_replay_matches_live(cfg);
}

TEST(TraceReplay, RtsFloodAttackerBitIdentical) {
  // Exercises the single-shot rts_gap_bound verdict path in replay.
  MultiDetectionConfig cfg = base_config(20, 5);
  cfg.pm = 0.0;
  cfg.attacker.kind = AttackerKind::kRtsFlood;
  cfg.attacker.flood_pps = 400.0;
  for (MonitorConfig& m : cfg.monitors) m.rts_gap_bound = true;
  expect_replay_matches_live(cfg);
}

TEST(TraceReplay, SybilAttackerBitIdentical) {
  // Multi-target traces: the header carries every sybil alias and replay
  // rebuilds the config-major x target view matrix.
  MultiDetectionConfig cfg = base_config(20, 9);
  cfg.pm = 0.0;
  cfg.attacker.kind = AttackerKind::kSybil;
  cfg.attacker.pm = 70.0;
  cfg.attacker.group = 3;
  expect_replay_matches_live(cfg);
}

TEST(TraceReplay, SequentialDetectorsBitIdentical) {
  // The CUSUM/SPRT paths run identically from a trace.
  MultiDetectionConfig cfg = base_config(30, 13);
  cfg.monitors = {small_monitor(10), small_monitor(10)};
  cfg.monitors[0].detector = DetectorKind::kCusum;
  cfg.monitors[1].detector = DetectorKind::kSprt;
  expect_replay_matches_live(cfg);
}

TEST(TraceReplay, RecordedTraceHeaderDescribesTheRun) {
  MultiDetectionConfig cfg = base_config(20, 3);
  TraceRecorder recorder;
  cfg.trace = &recorder;
  run_multi_detection_experiment(cfg);
  ASSERT_EQ(recorder.writers().size(), 1u);
  const TraceWriter& w = *recorder.writers().front();
  EXPECT_EQ(w.header().start_time, 0);
  EXPECT_EQ(w.header().targets.size(), 1u);
  EXPECT_GT(w.events_recorded(), 0u);
  // The stream ends with the kTraceEnd marker at the stop time.
  MemoryTraceReader reader(w.serialize());
  ASSERT_GT(reader.event_count(), 0u);
  const ObservationEvent& last = reader.events().back();
  EXPECT_EQ(last.kind, ObservationKind::kMarker);
  EXPECT_EQ(last.marker_code, static_cast<std::uint32_t>(MarkerCode::kTraceEnd));
  EXPECT_EQ(last.at, seconds_to_time(cfg.scenario.sim_seconds));
}

}  // namespace
}  // namespace manet::detect
