#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/config.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace manet {
namespace {

using util::Config;
using util::CounterRng;
using util::Xoshiro256ss;

TEST(Types, TimeConversionsRoundTrip) {
  EXPECT_EQ(seconds_to_time(1.0), kSecond);
  EXPECT_EQ(seconds_to_time(0.5), 500 * kMillisecond);
  EXPECT_DOUBLE_EQ(time_to_seconds(300 * kSecond), 300.0);
  EXPECT_EQ(seconds_to_time(20e-6), 20 * kMicrosecond);
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256ss a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256ss a2(42), c2(43);
  EXPECT_NE(a2(), c2());
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundAndCoversRange) {
  Xoshiro256ss rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 1600);  // ~2000 each
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256ss rng(11);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Xoshiro256ss rng(13);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, CounterRngIsRandomAccessAndStable) {
  CounterRng prs(0xABCDEF);
  const auto v5 = prs.value_at(5);
  const auto v0 = prs.value_at(0);
  EXPECT_EQ(prs.value_at(5), v5);  // re-reading any index gives same value
  EXPECT_EQ(prs.value_at(0), v0);
  EXPECT_NE(v0, v5);

  CounterRng same(0xABCDEF), other(0xABCDF0);
  EXPECT_EQ(same.value_at(17), prs.value_at(17));
  EXPECT_NE(other.value_at(17), prs.value_at(17));
}

TEST(Rng, CounterRngUniformAtIsBoundedAndWellSpread) {
  CounterRng prs(1234);
  util::Histogram hist(0, 32, 32);
  for (std::uint64_t i = 0; i < 32000; ++i) {
    const auto v = prs.uniform_at(i, 32);
    ASSERT_LT(v, 32u);
    hist.add(v);
  }
  // Chi-square with 31 dof: 99.9th percentile ~ 61.1.
  EXPECT_LT(hist.chi_square_uniform(), 61.1);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  util::RunningStats s;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_NEAR(s.variance(), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.sum(), 21.0, 1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  util::RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, ProportionWilsonIntervalContainsPointEstimate) {
  util::ProportionEstimator p;
  for (int i = 0; i < 100; ++i) p.add(i < 30);
  EXPECT_DOUBLE_EQ(p.proportion(), 0.3);
  EXPECT_LT(p.wilson_lower(), 0.3);
  EXPECT_GT(p.wilson_upper(), 0.3);
  EXPECT_GT(p.wilson_lower(), 0.2);
  EXPECT_LT(p.wilson_upper(), 0.42);
}

TEST(Stats, MidranksHandleTies) {
  const std::vector<double> v{3.0, 1.0, 3.0, 2.0};
  const auto r = util::midranks(v);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 2.0);
  EXPECT_DOUBLE_EQ(r[0], 3.5);
  EXPECT_DOUBLE_EQ(r[2], 3.5);
}

TEST(Stats, MidranksIntoMatchesMidranksAndTieTerm) {
  // The single-pass variant must produce the same ranks as midranks() and
  // a tie term equal to sum(t^3 - t) over the tie groups, for random
  // samples with and without ties. Buffers are reused across calls.
  Xoshiro256ss rng(17);
  std::vector<double> ranks;
  std::vector<std::size_t> order;
  for (int round = 0; round < 50; ++round) {
    std::vector<double> v;
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 40));
    const bool quantize = (round % 2) == 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.uniform(0, 8);
      v.push_back(quantize ? std::floor(x) : x);
    }
    const double tie_term = util::midranks_into(v, ranks, order);
    const auto expected = util::midranks(v);
    ASSERT_EQ(ranks.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ranks[i], expected[i]);

    // Tie term from first principles: count each distinct value's run.
    std::vector<double> sorted(v);
    std::sort(sorted.begin(), sorted.end());
    double want = 0.0;
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i;
      while (j < n && sorted[j] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i);
      want += t * t * t - t;
      i = j;
    }
    EXPECT_EQ(tie_term, want);
  }
}

TEST(Stats, NormalCdfAndQuantileAreInverses) {
  for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(util::normal_cdf(util::normal_quantile(p)), p, 1e-6);
  }
  EXPECT_NEAR(util::normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(util::normal_cdf(0.0), 0.5, 1e-12);
}

TEST(Stats, CorrelationDetectsLinearRelation) {
  std::vector<double> xs, ys, zs;
  Xoshiro256ss rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    xs.push_back(x);
    ys.push_back(2 * x + 1);
    zs.push_back(rng.uniform());
  }
  EXPECT_NEAR(util::correlation(xs, ys), 1.0, 1e-9);
  EXPECT_NEAR(util::correlation(xs, zs), 0.0, 0.15);
}

TEST(Histogram, BinsAndOverflow) {
  util::Histogram h(0, 10, 5);
  h.add(-1);
  h.add(0);
  h.add(9.99);
  h.add(10);
  h.add(5);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Config, DeclareSetGetTyped) {
  Config c;
  c.declare("rate", "20", "packets per second");
  c.declare("name", "grid", "topology");
  c.declare("flag", "true", "a flag");
  EXPECT_EQ(c.get_int("rate"), 20);
  c.set("rate", "35.5");
  EXPECT_DOUBLE_EQ(c.get_double("rate"), 35.5);
  EXPECT_TRUE(c.get_bool("flag"));
  EXPECT_THROW(c.set("unknown", "1"), util::ConfigError);
  EXPECT_THROW((void)c.get("unknown"), util::ConfigError);
  EXPECT_THROW((void)c.get_int("name"), util::ConfigError);
  EXPECT_NE(c.render().find("rate = 35.5"), std::string::npos);
}

TEST(Flags, ParsesKeyValueAndHelp) {
  Config c;
  c.declare("rate", "20", "");
  const char* argv[] = {"prog", "--rate=42", "pos", "--help"};
  const auto parsed = util::parse_flags(4, argv, c);
  EXPECT_TRUE(parsed.help);
  ASSERT_EQ(parsed.positional.size(), 1u);
  EXPECT_EQ(parsed.positional[0], "pos");
  EXPECT_EQ(c.get_int("rate"), 42);

  const char* bad[] = {"prog", "--nope=1"};
  EXPECT_THROW(util::parse_flags(2, bad, c), util::ConfigError);
  const char* malformed[] = {"prog", "--rate"};
  EXPECT_THROW(util::parse_flags(2, malformed, c), util::ConfigError);
}


TEST(Logging, LevelParsingAndGating) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("bogus"), LogLevel::kWarn);

  const LogLevel saved = util::log_level();
  util::set_log_level(LogLevel::kError);
  EXPECT_FALSE(util::log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(util::log_enabled(LogLevel::kError));
  util::set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(util::log_enabled(LogLevel::kDebug));
  util::set_log_level(saved);
}

}  // namespace
}  // namespace manet
