// Scale subsystem: bounded per-node memory, generator input validation,
// the LayoutIndex equality oracle, and the request/response workload.
//
// The memory-ceiling test is the acceptance check for PR 9's bounded-
// memory satellite: a long lossy mobile run must keep every node's
// retained carrier history under its configured budget, and the channel's
// incremental index under a small per-node constant.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/network.hpp"
#include "net/scale.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/cs_timeline.hpp"
#include "util/rng.hpp"

using namespace manet;

namespace {

// --- CsTimeline hard budgets -------------------------------------------------

// Drives the same long busy/idle edge sequence into an unbudgeted timeline
// and a tightly budgeted one: the budgeted history must stay under its cap
// at every step, while recent-window queries remain exact.
TEST(TimelineBudget, CompactionBoundsRetentionExactly) {
  const std::size_t cap = 64;
  // Retention far beyond the driven span: only the hard budget can prune.
  phy::CsTimeline full(3600 * kSecond);
  phy::CsTimeline tight(3600 * kSecond, cap, /*max_outages=*/4);

  SimTime t = 0;
  bool busy = false;
  util::Xoshiro256ss rng(7);
  for (int i = 0; i < 5000; ++i) {
    t += kMillisecond + static_cast<SimDuration>(rng.uniform_int(900)) *
                            kMicrosecond;
    busy = !busy;
    full.on_carrier(busy, t);
    tight.on_carrier(busy, t);
    ASSERT_LE(tight.recorded_transitions(), cap);
  }

  const auto& stats = tight.budget_stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.dropped_transitions, 0u);
  EXPECT_LE(stats.peak_transitions, cap);
  EXPECT_LE(tight.retained_memory_bytes(),
            cap * 16 + tight.budget_stats().peak_outages * 16 + 64);

  // Queries inside the retained suffix agree with the unbudgeted record.
  const SimTime from = t - 10 * kMillisecond;
  EXPECT_EQ(tight.busy_time(from, t), full.busy_time(from, t));
  EXPECT_EQ(tight.countable_idle_time(from, t, 50 * kMicrosecond),
            full.countable_idle_time(from, t, 50 * kMicrosecond));
  // The cumulative counter survives compaction untouched.
  EXPECT_EQ(tight.cumulative_busy(t), full.cumulative_busy(t));
}

TEST(TimelineBudget, OutageSpansAreBounded) {
  const std::size_t cap = 8;
  phy::CsTimeline tl(3600 * kSecond, /*max_transitions=*/1024, cap);
  SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    t += kMillisecond;
    tl.on_outage(true, t);
    t += kMillisecond;
    tl.on_outage(false, t);
  }
  EXPECT_GT(tl.budget_stats().dropped_outages, 0u);
  EXPECT_LE(tl.budget_stats().peak_outages, cap);
  // Recent outage time is still exact.
  EXPECT_EQ(tl.outage_time(t - kMillisecond, t), kMillisecond);
}

// --- Generator input validation ----------------------------------------------

TEST(ScaleValidation, RejectsDegenerateParameters) {
  net::ScaleScenarioParams ok;
  EXPECT_NO_THROW(ok.validate());

  auto expect_throws = [](auto mutate) {
    net::ScaleScenarioParams p;
    mutate(p);
    EXPECT_THROW(net::make_scale_config(p), std::invalid_argument);
  };
  expect_throws([](auto& p) { p.nodes = 0; });
  expect_throws([](auto& p) { p.nodes = net::ScenarioConfig::kMaxNodes + 1; });
  expect_throws([](auto& p) { p.density_per_km2 = 0.0; });
  expect_throws([](auto& p) { p.density_per_km2 = -4.0; });
  expect_throws([](auto& p) { p.density_per_km2 = 1e-300; });  // absurd area
  expect_throws([](auto& p) { p.sim_seconds = 0.0; });
  expect_throws([](auto& p) { p.num_flows = p.nodes + 1; });
  expect_throws([](auto& p) { p.packets_per_second = -1.0; });
  expect_throws([](auto& p) { p.min_speed_mps = -1.0; });
  expect_throws([](auto& p) { p.max_speed_mps = 0.1; });  // below min speed
  expect_throws([](auto& p) { p.pause_s = -1.0; });
  expect_throws([](auto& p) { p.channel_index = "warp"; });
}

TEST(TopologyValidation, RejectsOverflowAndDegenerateInputs) {
  // rows * cols would overflow size_t.
  EXPECT_THROW(net::grid_topology(std::size_t{1} << 33, std::size_t{1} << 33,
                                  200.0),
               std::invalid_argument);
  util::Xoshiro256ss rng(1);
  EXPECT_THROW(net::random_topology(0, 100.0, 100.0, rng),
               std::invalid_argument);
  EXPECT_THROW(net::random_topology(10, -5.0, 100.0, rng),
               std::invalid_argument);
  EXPECT_THROW(net::random_topology(10, 100.0, 0.0, rng),
               std::invalid_argument);
  std::vector<geom::Vec2> nodes{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_THROW(net::LayoutIndex(nodes, 0.0), std::invalid_argument);
  EXPECT_THROW(
      net::random_connected_topology(4, 1000.0, 1000.0, 0.0, rng),
      std::invalid_argument);
}

// --- LayoutIndex equality oracle ---------------------------------------------

TEST(LayoutIndex, MatchesNaiveNeighborScan) {
  for (const std::uint64_t seed : {3ull, 17ull}) {
    util::Xoshiro256ss rng(seed);
    const auto nodes = net::random_topology(300, 2500.0, 1500.0, rng);
    for (const double range : {120.0, 250.0, 600.0}) {
      const net::LayoutIndex index(nodes, range);
      std::vector<std::size_t> got;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        got.clear();
        index.neighbors_into(i, range, got);
        const auto want = net::neighbors_within(nodes, i, range);
        ASSERT_EQ(got, want) << "seed=" << seed << " range=" << range
                             << " node=" << i;
        EXPECT_EQ(index.has_neighbor(i, range), !want.empty());
      }
    }
  }
}

TEST(LayoutIndex, ConnectivityMatchesReferenceAcrossRanges) {
  for (const std::uint64_t seed : {9ull, 31ull}) {
    util::Xoshiro256ss rng(seed);
    const auto nodes = net::random_topology(200, 3000.0, 3000.0, rng);
    // Sweep from surely-disconnected to surely-connected.
    for (const double range : {50.0, 150.0, 250.0, 400.0, 800.0}) {
      EXPECT_EQ(net::is_connected(nodes, range),
                net::is_connected_reference(nodes, range))
          << "seed=" << seed << " range=" << range;
    }
  }
}

// --- Scale workload ----------------------------------------------------------

net::ScaleWorkload::Stats run_scale(const net::ScaleScenarioParams& params) {
  const auto config = net::make_scale_config(params);
  net::Network net(config);
  net::ScaleWorkload workload(net, config.num_flows, config.packets_per_second,
                              config.seed);
  workload.start(kSecond, seconds_to_time(config.sim_seconds));
  net.run_until(seconds_to_time(config.sim_seconds));
  return workload.stats();
}

TEST(ScaleWorkload, RoundTripsAndIsDeterministic) {
  net::ScaleScenarioParams params;
  params.nodes = 150;
  params.sim_seconds = 5.0;
  params.seed = 11;

  const auto first = run_scale(params);
  EXPECT_GT(first.requests_generated, 0u);
  EXPECT_GT(first.requests_delivered, 0u);
  EXPECT_GT(first.responses_delivered, 0u);

  // Same seed, fresh network: identical counters.
  const auto second = run_scale(params);
  EXPECT_EQ(first.requests_generated, second.requests_generated);
  EXPECT_EQ(first.requests_delivered, second.requests_delivered);
  EXPECT_EQ(first.responses_sent, second.responses_sent);
  EXPECT_EQ(first.responses_delivered, second.responses_delivered);

  // The receiver-lookup path is invisible to the workload: the reference
  // scan produces the same deliveries as the incremental index.
  auto scan = params;
  scan.channel_index = "scan";
  const auto ref = run_scale(scan);
  EXPECT_EQ(first.requests_delivered, ref.requests_delivered);
  EXPECT_EQ(first.responses_sent, ref.responses_sent);
  EXPECT_EQ(first.responses_delivered, ref.responses_delivered);
}

TEST(ScaleWorkload, RequiresRouters) {
  net::ScenarioConfig config;  // defaults: no AODV routing
  config.grid_rows = 2;
  config.grid_cols = 2;
  net::Network net(config);
  EXPECT_THROW(net::ScaleWorkload(net, 1, 1.0, 1), std::invalid_argument);
}

// --- Memory ceiling ----------------------------------------------------------

// The bounded-memory acceptance test: a lossy mobile run long enough for
// timelines to wrap their budgets many times over must keep every node's
// retained history under its configured cap, and the incremental channel
// index under a small per-node constant.
TEST(ScaleMemory, PerNodeRetentionStaysUnderBudget) {
  net::ScaleScenarioParams params;
  params.nodes = 200;
  params.sim_seconds = 20.0;
  params.seed = 3;
  params.channel_index = "incremental";
  params.timeline_retention_s = 0.5;
  params.timeline_max_transitions = 512;

  auto config = net::make_scale_config(params);
  config.faults.loss_probability = 0.2;  // lossy: retries inflate traffic

  net::Network net(config);
  net::ScaleWorkload workload(net, config.num_flows, config.packets_per_second,
                              config.seed);
  workload.start(kSecond, seconds_to_time(config.sim_seconds));
  net.run_until(seconds_to_time(config.sim_seconds));

  // sizeof(Transition) == sizeof(OutageSpan) == 16: the ceiling below is
  // the budget expressed in bytes, independent of traffic or run length.
  const std::size_t per_node_ceiling =
      (params.timeline_max_transitions + phy::CsTimeline::kDefaultMaxOutages) *
      16;
  bool some_node_pruned = false;
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto& tl = net.timeline(i);
    EXPECT_LE(tl.retained_memory_bytes(), per_node_ceiling) << "node " << i;
    EXPECT_LE(tl.budget_stats().peak_transitions,
              params.timeline_max_transitions)
        << "node " << i;
    if (tl.budget_stats().peak_transitions > 0 ||
        tl.recorded_transitions() > 0) {
      some_node_pruned = true;
    }
  }
  EXPECT_TRUE(some_node_pruned);  // the run actually generated history

  // Channel index + pair cache: bounded per node (the pre-PR-9 rebuild
  // cache was O(N^2); the incremental one must stay O(N)).
  EXPECT_LE(net.channel().index_memory_bytes(), net.size() * std::size_t{32768});
}

}  // namespace
