// The sequential detector family (src/detect/sequential.*): CUSUM and
// SPRT score dynamics, the factory/name mapping, and the Monitor
// integration — sequential detectors must flag a blatant cheat faster
// than the Wilcoxon batch (windows of evidence, not a fixed batch) while
// keeping honest runs quiet.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/experiment.hpp"
#include "detect/monitor.hpp"
#include "detect/sequential.hpp"
#include "util/config.hpp"

namespace manet::detect {
namespace {

TEST(SequentialNames, RoundTripAndErrors) {
  EXPECT_EQ(detector_from_name("wilcoxon"), DetectorKind::kWilcoxon);
  EXPECT_EQ(detector_from_name("cusum"), DetectorKind::kCusum);
  EXPECT_EQ(detector_from_name("sprt"), DetectorKind::kSprt);
  for (DetectorKind k :
       {DetectorKind::kWilcoxon, DetectorKind::kCusum, DetectorKind::kSprt}) {
    EXPECT_EQ(detector_from_name(detector_name(k)), k);
  }
  EXPECT_THROW(detector_from_name("page"), util::ConfigError);
}

TEST(SequentialFactory, WilcoxonNeedsNoState) {
  EXPECT_EQ(make_sequential_test(DetectorKind::kWilcoxon, {}, {}), nullptr);
  EXPECT_NE(make_sequential_test(DetectorKind::kCusum, {}, {}), nullptr);
  EXPECT_NE(make_sequential_test(DetectorKind::kSprt, {}, {}), nullptr);
}

TEST(Cusum, AccumulatesOnlyAboveDrift) {
  CusumParams p;
  p.drift = 0.05;
  p.threshold = 0.49;  // just under 5 * (0.15 - 0.05), float-safe
  CusumTest test(p);

  // Honest-looking samples (deficit at/below the drift) never accumulate.
  for (int i = 0; i < 100; ++i) {
    const auto step = test.update(0.05);
    EXPECT_FALSE(step.flag);
    EXPECT_EQ(step.score, 0.0);
  }
  // Negative deficits clamp at zero rather than building credit a cheater
  // could spend later.
  test.update(-5.0);
  EXPECT_EQ(test.score(), 0.0);

  // A sustained 0.15 deficit accumulates 0.10 per sample: threshold 0.5
  // crosses on the 5th sample.
  int flagged_at = -1;
  for (int i = 1; i <= 10; ++i) {
    if (test.update(0.15).flag) {
      flagged_at = i;
      break;
    }
  }
  EXPECT_EQ(flagged_at, 5);
  EXPECT_GE(test.score(), p.threshold);

  test.reset();
  EXPECT_EQ(test.score(), 0.0);
}

TEST(Sprt, FlagsCheatsAndRestartsOnAccept) {
  SprtParams p;  // defaults: mu0=-0.10, mu1=0.15, sigma=0.25
  SprtTest test(p);

  // Samples at the cheat mean walk the LLR up to A = ln((1-beta)/alpha).
  int steps = 0;
  while (!test.update(p.mean_cheat).flag) {
    ASSERT_LT(++steps, 1000);
  }
  const double upper = std::log((1.0 - p.beta) / p.alpha);
  EXPECT_GE(test.score(), upper);

  // Samples at the honest mean drive the walk to the accept boundary,
  // which restarts it (score clamps at 0, never negative).
  test.reset();
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(test.update(p.mean_honest).flag);
    EXPECT_GE(test.score(), 0.0);
  }
  // A restarted walk still catches a late-onset cheat.
  steps = 0;
  while (!test.update(p.mean_cheat).flag) {
    ASSERT_LT(++steps, 1000);
  }
  EXPECT_GE(test.score(), upper);
}

TEST(SequentialBank, SlotsMatchScalarTestsBitForBit) {
  // The batched pipeline runs every CUSUM/SPRT lane through one
  // SequentialBank. Interleave updates across slots with distinct params
  // and assert each slot's Step stream equals the scalar test's, bit for
  // bit — including the SPRT restart-on-accept and the reset-after-flag
  // protocol the monitor drives.
  CusumParams c1;  // defaults
  CusumParams c2;
  c2.drift = 0.02;
  c2.threshold = 0.8;
  SprtParams s1;  // defaults
  SprtParams s2;
  s2.mean_honest = -0.05;
  s2.mean_cheat = 0.25;
  s2.sigma = 0.4;

  CusumTest ct1(c1), ct2(c2);
  SprtTest st1(s1), st2(s2);
  SequentialBank bank;
  const std::size_t b1 = bank.add(DetectorKind::kCusum, c1, {});
  const std::size_t b2 = bank.add(DetectorKind::kCusum, c2, {});
  const std::size_t b3 = bank.add(DetectorKind::kSprt, {}, s1);
  const std::size_t b4 = bank.add(DetectorKind::kSprt, {}, s2);
  SequentialTest* scalar[] = {&ct1, &ct2, &st1, &st2};
  const std::size_t slots[] = {b1, b2, b3, b4};

  // A deterministic deficit stream that meanders through honest and cheat
  // regimes (the exact values are irrelevant; identity of the arithmetic
  // is the point).
  double d = -0.2;
  for (int i = 0; i < 500; ++i) {
    d = 0.31 - d * 0.93;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto want = scalar[k]->update(d);
      const auto got = bank.update(slots[k], d);
      ASSERT_EQ(got.flag, want.flag) << "slot " << k << " step " << i;
      ASSERT_EQ(got.score, want.score) << "slot " << k << " step " << i;
      EXPECT_EQ(bank.score(slots[k]), scalar[k]->score())
          << "slot " << k << " step " << i;
      if (want.flag) {
        scalar[k]->reset();
        bank.reset(slots[k]);
      }
    }
  }
}

TEST(SequentialBank, RejectsWilcoxonSlots) {
  SequentialBank bank;
  EXPECT_THROW(bank.add(DetectorKind::kWilcoxon, {}, {}), util::ConfigError);
  EXPECT_EQ(bank.size(), 0u);
}

// --- Monitor integration -----------------------------------------------------

MonitorConfig seq_monitor(DetectorKind kind) {
  MonitorConfig m;
  m.sample_size = 25;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
  m.fixed_contenders = 8.0;
  m.detector = kind;
  return m;
}

MultiDetectionConfig seq_config(double pm, std::uint64_t seed) {
  MultiDetectionConfig cfg;
  cfg.scenario.grid_rows = 3;
  cfg.scenario.grid_cols = 4;
  cfg.scenario.num_flows = 5;
  cfg.scenario.sim_seconds = 40;
  cfg.scenario.seed = seed;
  cfg.rate_pps = 25;
  cfg.pm = pm;
  cfg.monitors = {seq_monitor(DetectorKind::kWilcoxon),
                  seq_monitor(DetectorKind::kCusum),
                  seq_monitor(DetectorKind::kSprt)};
  cfg.collect_windows = true;
  return cfg;
}

TEST(SequentialMonitor, CheaterFlaggedNoLaterThanWilcoxon) {
  const MultiDetectionResult r = run_multi_detection_experiment(seq_config(80, 7));
  const MonitorStats& wilcoxon = r.per_config[0].stats;
  const MonitorStats& cusum = r.per_config[1].stats;
  const MonitorStats& sprt = r.per_config[2].stats;

  ASSERT_NE(wilcoxon.first_flag_time, kTimeNever);
  ASSERT_NE(cusum.first_flag_time, kTimeNever);
  ASSERT_NE(sprt.first_flag_time, kTimeNever);
  // A sequential detector emits its verdict the moment the score crosses;
  // the batch test must wait for its window to fill. (Deterministic
  // checks fire identically in all three configs, so a det-flag tie is
  // possible but the sequential side can never be slower.)
  EXPECT_LE(cusum.first_flag_time, wilcoxon.first_flag_time);
  EXPECT_LE(sprt.first_flag_time, wilcoxon.first_flag_time);
}

TEST(SequentialMonitor, HonestRunStaysQuietStatistically) {
  const MultiDetectionResult r = run_multi_detection_experiment(seq_config(0, 11));
  for (std::size_t i = 0; i < r.per_config.size(); ++i) {
    const DetectionResult& d = r.per_config[i];
    EXPECT_GT(d.windows, 0u) << "config " << i;
    // Checkpoint windows keep the denominator alive for honest runs; the
    // statistical flag rate must stay near zero for every detector.
    EXPECT_LE(d.statistical_rate, 0.1) << "config " << i;
  }
}

TEST(SequentialMonitor, CheckpointWindowsCarryScores) {
  // Sequential configs emit an unflagged checkpoint window at least every
  // sample_size samples; its p_less = exp(-score) is a valid probability.
  MultiDetectionConfig cfg = seq_config(0, 3);
  cfg.monitors = {seq_monitor(DetectorKind::kCusum)};
  const MultiDetectionResult r = run_multi_detection_experiment(cfg);
  const DetectionResult& d = r.per_config[0];
  ASSERT_GT(d.window_log.size(), 0u);
  for (const WindowResult& w : d.window_log) {
    EXPECT_GE(w.p_less, 0.0);
    EXPECT_LE(w.p_less, 1.0);
  }
}

}  // namespace
}  // namespace manet::detect
