// Tests for the experiment harnesses (src/detect/experiment.*) — the
// machinery the figure benches are built on.
#include <gtest/gtest.h>

#include <vector>

#include "detect/experiment.hpp"
#include "exp/engine.hpp"
#include "exp/seeding.hpp"

namespace manet::detect {
namespace {

net::ScenarioConfig tiny_grid(double seconds) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 3;
  cfg.grid_cols = 4;
  cfg.num_flows = 5;
  cfg.sim_seconds = seconds;
  cfg.seed = 41;
  return cfg;
}

MonitorConfig small_monitor(std::size_t ss = 10) {
  MonitorConfig m;
  m.sample_size = ss;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
  m.fixed_contenders = 8.0;
  return m;
}

TEST(Experiment, IdenticalMonitorConfigsSeeIdenticalHistory) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(30);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor(), small_monitor()};  // twins

  const auto result = run_multi_detection_experiment(cfg);
  ASSERT_EQ(result.per_config.size(), 2u);
  EXPECT_EQ(result.per_config[0].windows, result.per_config[1].windows);
  EXPECT_EQ(result.per_config[0].flagged, result.per_config[1].flagged);
  EXPECT_EQ(result.per_config[0].stats.samples,
            result.per_config[1].stats.samples);
}

TEST(Experiment, TrialsAggregateAcrossSeeds) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(20);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor()};

  const auto one = run_multi_detection_experiment(cfg);
  const auto three = run_multi_detection_trials(cfg, 3);
  EXPECT_GT(three.per_config[0].windows, one.per_config[0].windows);
  EXPECT_GE(three.per_config[0].windows, 2 * one.per_config[0].windows / 2);
  // First trial is seed-identical to the single run.
  EXPECT_GE(three.per_config[0].windows, one.per_config[0].windows);
  EXPECT_GE(three.per_config[0].flagged, one.per_config[0].flagged);
}

TEST(Experiment, StatisticalFlagsAreSubsetOfAllFlags) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(40);
  cfg.rate_pps = 25;
  cfg.pm = 90;
  cfg.monitors = {small_monitor()};
  const auto result = run_multi_detection_experiment(cfg);
  const auto& r = result.per_config[0];
  EXPECT_LE(r.flagged_statistical, r.flagged);
  EXPECT_LE(r.flagged, r.windows);
  EXPECT_GE(r.detection_rate, r.statistical_rate);
}

TEST(Experiment, DifferentSampleSizesPartitionTheSameSamples) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(40);
  cfg.rate_pps = 25;
  cfg.pm = 0;
  cfg.monitors = {small_monitor(10), small_monitor(50)};
  const auto result = run_multi_detection_experiment(cfg);
  // Same channel history: both monitors accepted the same sample stream,
  // chunked differently.
  EXPECT_EQ(result.per_config[0].stats.samples,
            result.per_config[1].stats.samples);
  EXPECT_GE(result.per_config[0].stats.windows,
            4 * result.per_config[1].stats.windows);
}

TEST(Experiment, CondProbDeterministicPerSeed) {
  CondProbConfig cfg;
  cfg.scenario = tiny_grid(10);
  cfg.rate_pps = 20;
  cfg.warmup_s = 1;
  cfg.measure_s = 8;
  cfg.monitor = small_monitor();

  const auto a = run_cond_prob_experiment(cfg);
  const auto b = run_cond_prob_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.measured_rho, b.measured_rho);
  EXPECT_DOUBLE_EQ(a.sim_p_busy_given_idle, b.sim_p_busy_given_idle);
  EXPECT_DOUBLE_EQ(a.sim_p_idle_given_busy, b.sim_p_idle_given_busy);
  // Analytical values are pure functions of the measured state.
  EXPECT_DOUBLE_EQ(a.ana_p_busy_given_idle, b.ana_p_busy_given_idle);
}

TEST(Experiment, MeasuredRhoIsLongHorizonExact) {
  // The reported intensity must survive timeline pruning on long runs
  // (regression test for the cumulative-busy counter).
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(40);  // > 10 s retention
  cfg.rate_pps = 25;
  cfg.pm = 0;
  cfg.monitors = {small_monitor()};
  const auto result = run_multi_detection_experiment(cfg);
  EXPECT_GT(result.measured_rho, 0.05);
  EXPECT_LT(result.measured_rho, 0.95);
}

TEST(Experiment, ParallelTrialsBitIdenticalToSerial) {
  // The engine's core guarantee: aggregated output does not depend on the
  // worker count. Exact equality, including the floating-point fields —
  // aggregation happens in trial order on the caller's thread.
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(15);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor()};

  exp::Engine serial(1), parallel(4);
  const auto a = run_multi_detection_trials(cfg, 4, serial);
  const auto b = run_multi_detection_trials(cfg, 4, parallel);

  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.measured_rho, b.measured_rho);  // bitwise, not near
  ASSERT_EQ(a.per_config.size(), b.per_config.size());
  EXPECT_EQ(a.per_config[0].windows, b.per_config[0].windows);
  EXPECT_EQ(a.per_config[0].flagged, b.per_config[0].flagged);
  EXPECT_EQ(a.per_config[0].flagged_statistical,
            b.per_config[0].flagged_statistical);
  EXPECT_EQ(a.per_config[0].detection_rate, b.per_config[0].detection_rate);
  EXPECT_EQ(a.per_config[0].stats.samples, b.per_config[0].stats.samples);
  EXPECT_EQ(a.per_config[0].stats.rts_observed,
            b.per_config[0].stats.rts_observed);
}

TEST(Experiment, TrialSeedsMatchHistoricalSerialSeeding) {
  // Trial i of run_multi_detection_trials must equal a lone experiment
  // seeded base + i (the old `++seed` loop).
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(15);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor()};

  std::uint64_t windows = 0, flagged = 0, samples = 0;
  for (int i = 0; i < 3; ++i) {
    MultiDetectionConfig one = cfg;
    one.scenario.seed = exp::trial_seed(cfg.scenario.seed,
                                        static_cast<std::uint64_t>(i));
    const auto r = run_multi_detection_experiment(one);
    windows += r.per_config[0].windows;
    flagged += r.per_config[0].flagged;
    samples += r.per_config[0].stats.samples;
  }

  exp::Engine engine(2);
  const auto agg = run_multi_detection_trials(cfg, 3, engine);
  EXPECT_EQ(agg.per_config[0].windows, windows);
  EXPECT_EQ(agg.per_config[0].flagged, flagged);
  EXPECT_EQ(agg.per_config[0].stats.samples, samples);
}

TEST(Experiment, SweepMatchesPerPointTrials) {
  // One flattened sweep over several points must equal running each point
  // on its own, regardless of worker count.
  MultiDetectionConfig base;
  base.scenario = tiny_grid(15);
  base.rate_pps = 25;
  base.monitors = {small_monitor()};

  std::vector<MultiDetectionConfig> points;
  for (double pm : {0.0, 60.0}) {
    MultiDetectionConfig p = base;
    p.pm = pm;
    points.push_back(p);
  }

  exp::Engine engine(3);
  const auto swept = run_multi_detection_sweep(points, 2, engine);
  ASSERT_EQ(swept.size(), 2u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto lone = run_multi_detection_trials(points[i], 2);
    EXPECT_EQ(swept[i].per_config[0].windows, lone.per_config[0].windows);
    EXPECT_EQ(swept[i].per_config[0].flagged, lone.per_config[0].flagged);
    EXPECT_EQ(swept[i].measured_rho, lone.measured_rho);
  }
}

TEST(Experiment, EngineFailuresAreDeterministic) {
  // An invalid point (no monitors) throws the same error through the
  // parallel path as the serial one.
  MultiDetectionConfig bad;
  bad.scenario = tiny_grid(5);
  exp::Engine engine(4);
  EXPECT_THROW(run_multi_detection_trials(bad, 3, engine),
               std::invalid_argument);
}

TEST(Experiment, RequiresAtLeastOneMonitor) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(5);
  EXPECT_THROW(run_multi_detection_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace manet::detect
