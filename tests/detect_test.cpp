#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "detect/arma.hpp"
#include "detect/density.hpp"
#include "detect/monitor.hpp"
#include "detect/report.hpp"
#include "detect/system_state.hpp"
#include "detect/wilcoxon.hpp"
#include "geom/region_model.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace manet::detect {
namespace {

// --- ARMA (Eq. 6) -----------------------------------------------------------

TEST(Arma, FirstBatchPrimesFilter) {
  ArmaIntensityFilter f(0.995);
  EXPECT_FALSE(f.primed());
  EXPECT_DOUBLE_EQ(f.intensity(), 0.0);
  f.add_batch(0.4);
  EXPECT_TRUE(f.primed());
  EXPECT_DOUBLE_EQ(f.intensity(), 0.4);
}

TEST(Arma, ConvergesToStationaryBusyFraction) {
  ArmaIntensityFilter f(0.995);
  util::Xoshiro256ss rng(1);
  for (int i = 0; i < 5000; ++i) f.add_batch(rng.bernoulli(0.6) ? 1.0 : 0.0);
  EXPECT_NEAR(f.intensity(), 0.6, 0.05);
}

TEST(Arma, TracksLoadChanges) {
  ArmaIntensityFilter f(0.99);
  for (int i = 0; i < 2000; ++i) f.add_batch(0.2);
  EXPECT_NEAR(f.intensity(), 0.2, 1e-6);
  for (int i = 0; i < 2000; ++i) f.add_batch(0.8);
  EXPECT_NEAR(f.intensity(), 0.8, 1e-6);
}

TEST(Arma, InsensitiveToAlphaNearOne) {
  // The paper: "results are not very sensitive to alpha as long as it is
  // close to 1."
  for (double alpha : {0.99, 0.995, 0.999}) {
    ArmaIntensityFilter f(alpha);
    util::Xoshiro256ss rng(2);
    for (int i = 0; i < 20000; ++i) f.add_batch(rng.bernoulli(0.5) ? 1.0 : 0.0);
    EXPECT_NEAR(f.intensity(), 0.5, 0.05) << "alpha=" << alpha;
  }
}

TEST(Arma, ClampsOutOfRangeBatches) {
  ArmaIntensityFilter f(0.9);
  f.add_batch(7.0);
  EXPECT_DOUBLE_EQ(f.intensity(), 1.0);
  ArmaIntensityFilter g(0.9);
  g.add_batch(-3.0);
  EXPECT_DOUBLE_EQ(g.intensity(), 0.0);
}

TEST(Arma, AddSlotsAggregatesBatch) {
  ArmaIntensityFilter f(0.995);
  f.add_slots(30, 100);
  EXPECT_DOUBLE_EQ(f.intensity(), 0.3);
  f.add_slots(0, 0);  // ignored
  EXPECT_DOUBLE_EQ(f.intensity(), 0.3);
}

// --- Density -----------------------------------------------------------------

TEST(Density, CountsDistinctTransmittersInWindow) {
  HeardTransmitterDensity d(1 * kSecond, 250.0);
  d.heard(1, 0);
  d.heard(2, 100 * kMillisecond);
  d.heard(1, 200 * kMillisecond);  // repeat
  EXPECT_EQ(d.competitors(300 * kMillisecond), 2u);
  // Node 1 last heard at 0.2 s: expires after 1.2 s.
  EXPECT_EQ(d.competitors(1300 * kMillisecond), 0u);
}

TEST(Density, DensityScalesWithCount) {
  HeardTransmitterDensity d(10 * kSecond, 250.0);
  for (NodeId i = 0; i < 10; ++i) d.heard(i, 0);
  const double area = std::numbers::pi * 250.0 * 250.0;
  EXPECT_NEAR(d.density(1 * kSecond), 10.0 / area, 1e-12);
}

TEST(Density, BianchiInversionIsMonotone) {
  // More competitors -> higher collision probability -> the inversion must
  // recover larger n from larger p.
  const auto n_low = estimate_competitors_from_collisions(0.05, 31);
  const auto n_mid = estimate_competitors_from_collisions(0.20, 31);
  const auto n_high = estimate_competitors_from_collisions(0.45, 31);
  EXPECT_LE(n_low, n_mid);
  EXPECT_LE(n_mid, n_high);
  EXPECT_GE(n_high, 10u);
  EXPECT_LE(n_low, 4u);
}

// --- System state (Eqs. 1-5) --------------------------------------------------

SystemStateParams paper_params(double rho, ActivityMapping mapping) {
  SystemStateParams p;
  p.rho = rho;
  p.mapping = mapping;
  p.k = p.n = p.m = p.j = 5;  // the paper's grid setting
  p.contenders = 20;
  return p;
}

TEST(SystemState, PBusyGivenIdleIncreasesWithIntensity) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  double prev = -1;
  for (double rho = 0.1; rho <= 0.85; rho += 0.1) {
    const double p = model.p_busy_given_idle(paper_params(rho, ActivityMapping::kPerSlot));
    EXPECT_GT(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(SystemState, PIdleGivenBusyDecreasesWithIntensity) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  double prev = 2;
  for (double rho = 0.1; rho <= 0.85; rho += 0.1) {
    const double p = model.p_idle_given_busy(paper_params(rho, ActivityMapping::kPerSlot));
    EXPECT_LT(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(SystemState, Equation5Complement) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  const auto p = paper_params(0.5, ActivityMapping::kPerSlot);
  EXPECT_DOUBLE_EQ(model.p_idle_given_idle(p), 1.0 - model.p_busy_given_idle(p));
}

TEST(SystemState, EstimatedSlotsPartitionTheWindow) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  const auto p = paper_params(0.4, ActivityMapping::kPerSlot);
  const double idle = 70, busy = 30;
  const double iest = model.estimated_idle(p, idle, busy);
  const double best = model.estimated_busy(p, idle, busy);
  EXPECT_NEAR(iest + best, idle + busy, 1e-9);  // Eq. 2
  EXPECT_GE(iest, 0);
  EXPECT_LE(iest, idle + busy);
}

TEST(SystemState, ActivityMappingsAgreeAtExtremes) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  for (auto mapping : {ActivityMapping::kIdentity, ActivityMapping::kPerSlot}) {
    auto p = paper_params(0.0, mapping);
    EXPECT_DOUBLE_EQ(model.activity(p), 0.0);
    p.rho = 1.0;
    EXPECT_NEAR(model.activity(p), 1.0, 1e-9);
  }
}

TEST(SystemState, PerSlotMappingDampensMidRangeActivity) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  const auto ident = paper_params(0.5, ActivityMapping::kIdentity);
  const auto per_slot = paper_params(0.5, ActivityMapping::kPerSlot);
  EXPECT_LT(model.activity(per_slot), model.activity(ident));
}

TEST(SystemState, MoreNeighborsRaiseBusyProbability) {
  const geom::RegionModel regions(240, 550);
  const SystemStateModel model(regions);
  auto sparse = paper_params(0.5, ActivityMapping::kPerSlot);
  auto dense = sparse;
  dense.n = dense.k = 15;
  EXPECT_GT(model.p_busy_given_idle(dense), model.p_busy_given_idle(sparse));
}

TEST(SystemState, SharedModelMemoMatchesPrivateModelsBitForBit) {
  // The batched pipeline evaluates Eq. 1-5 through ONE model per
  // config-group where the scalar pipeline owned one model per monitor.
  // The memo keys on exact parameter equality, so interleaving several
  // lanes' (identical or differing) parameter streams through a shared
  // instance must return the identical doubles each private instance
  // produces — hits and misses alike.
  const geom::RegionModel regions(240, 550);
  const SystemStateModel shared(regions);
  const SystemStateModel private_a(regions);
  const SystemStateModel private_b(regions);
  for (double rho = 0.05; rho <= 0.9; rho += 0.07) {
    auto pa = paper_params(rho, ActivityMapping::kPerSlot);
    auto pb = paper_params(rho, ActivityMapping::kPerSlot);
    pb.contenders = 8;  // lane B keys a different point at the same rho
    for (int repeat = 0; repeat < 3; ++repeat) {  // memo hits on 2nd/3rd
      const auto& sa = shared.conditional_probs(pa);
      const auto& ra = private_a.conditional_probs(pa);
      EXPECT_EQ(sa.p_busy_given_idle, ra.p_busy_given_idle);
      EXPECT_EQ(sa.p_idle_given_busy, ra.p_idle_given_busy);
      EXPECT_EQ(sa.p_idle_given_idle, ra.p_idle_given_idle);
      const auto& sb = shared.conditional_probs(pb);
      const auto& rb = private_b.conditional_probs(pb);
      EXPECT_EQ(sb.p_busy_given_idle, rb.p_busy_given_idle);
      EXPECT_EQ(sb.p_idle_given_busy, rb.p_idle_given_busy);
      EXPECT_EQ(sb.p_idle_given_idle, rb.p_idle_given_idle);
    }
  }
}

// --- Wilcoxon rank sum ---------------------------------------------------------

TEST(Wilcoxon, ExactExtremeSeparationSmallSample) {
  // x = {4,5,6}, y = {1,2,3}: y holds the three smallest ranks.
  // P(W_y <= 6) = 1 / C(6,3) = 0.05.
  const std::vector<double> x{4, 5, 6}, y{1, 2, 3};
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.w_y, 6.0);
  EXPECT_NEAR(r.p_less, 0.05, 1e-12);
  EXPECT_NEAR(r.p_greater, 1.0, 1e-12);
  EXPECT_NEAR(r.p_two_sided, 0.1, 1e-12);

  // Swapped: y largest.
  const auto r2 = wilcoxon_rank_sum(y, x);
  EXPECT_NEAR(r2.p_greater, 0.05, 1e-12);
  EXPECT_NEAR(r2.p_less, 1.0, 1e-12);
}

TEST(Wilcoxon, ExactMatchesHandComputedDistribution) {
  // nx = ny = 2, ranks {1,2,3,4}, C(4,2)=6 subsets with sums
  // 3,4,5,5,6,7. For y = {10,20} vs x = {30,40}: W_y = 3.
  const std::vector<double> x{30, 40}, y{10, 20};
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.p_less, 1.0 / 6.0, 1e-12);   // P(W <= 3)
  // For y={10,30} vs x={20,40}: ranks y={1,3}, W=4, P(W<=4)=2/6.
  const std::vector<double> x2{20, 40}, y2{10, 30};
  const auto r2 = wilcoxon_rank_sum(x2, y2);
  EXPECT_NEAR(r2.p_less, 2.0 / 6.0, 1e-12);
}

TEST(Wilcoxon, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> x{5, 5, 5, 5, 5};
  const auto r = wilcoxon_rank_sum(x, x);
  EXPECT_GT(r.p_less, 0.4);
  EXPECT_GT(r.p_greater, 0.4);
}

TEST(Wilcoxon, HandlesTiesViaMidranks) {
  const std::vector<double> x{1, 2, 2, 3}, y{2, 2, 2, 4};
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_GT(r.p_less, 0.05);  // no real separation
  EXPECT_LE(r.p_less, 1.0);
  EXPECT_GE(r.p_two_sided, 0.0);
}

TEST(Wilcoxon, ApproxAndExactAgreeOnMediumSamples) {
  util::Xoshiro256ss rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 15; ++i) x.push_back(rng.normal(0, 1));
  for (int i = 0; i < 15; ++i) y.push_back(rng.normal(-0.8, 1));

  WilcoxonOptions exact_opts;
  exact_opts.exact_max_total = 40;
  WilcoxonOptions approx_opts;
  approx_opts.exact_max_total = 0;

  const auto ex = wilcoxon_rank_sum(x, y, exact_opts);
  const auto ap = wilcoxon_rank_sum(x, y, approx_opts);
  EXPECT_TRUE(ex.exact);
  EXPECT_FALSE(ap.exact);
  EXPECT_NEAR(ex.p_less, ap.p_less, 0.02);
}

TEST(Wilcoxon, DetectsStochasticallySmallerSample) {
  util::Xoshiro256ss rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 25; ++i) {
    x.push_back(rng.uniform(0, 32));
    y.push_back(rng.uniform(0, 32) * 0.3);  // strongly reduced back-offs
  }
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_LT(r.p_less, 0.001);
  EXPECT_GT(r.p_greater, 0.5);
}

TEST(Wilcoxon, PValuesValidUnderNullHypothesis) {
  // Under H0 (identical continuous populations), P(p_less <= 0.05) <= ~0.05.
  util::Xoshiro256ss rng(5);
  int rejections = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x, y;
    for (int i = 0; i < 10; ++i) x.push_back(rng.uniform());
    for (int i = 0; i < 10; ++i) y.push_back(rng.uniform());
    if (wilcoxon_rank_sum(x, y).p_less <= 0.05) ++rejections;
  }
  const double rate = rejections / static_cast<double>(trials);
  EXPECT_LE(rate, 0.065);
  EXPECT_GE(rate, 0.02);
}

TEST(Wilcoxon, PowerGrowsWithSampleSize) {
  util::Xoshiro256ss rng(6);
  auto power = [&](int n) {
    int hits = 0;
    for (int t = 0; t < 300; ++t) {
      std::vector<double> x, y;
      for (int i = 0; i < n; ++i) {
        x.push_back(rng.uniform(0, 32));
        y.push_back(rng.uniform(0, 32) * 0.7);
      }
      if (wilcoxon_rank_sum(x, y).p_less < 0.01) ++hits;
    }
    return hits / 300.0;
  };
  const double p10 = power(10);
  const double p50 = power(50);
  EXPECT_GT(p50, p10);
  EXPECT_GT(p50, 0.55);
}

TEST(Wilcoxon, ThrowsOnEmptySample) {
  const std::vector<double> x{1, 2, 3}, empty;
  EXPECT_THROW(wilcoxon_rank_sum(x, empty), std::invalid_argument);
  EXPECT_THROW(wilcoxon_rank_sum(empty, x), std::invalid_argument);
}

TEST(Wilcoxon, AllValuesTiedDegenerateVariance) {
  // Large tied samples fall through to the approx path with zero variance.
  const std::vector<double> x(30, 7.0), y(30, 7.0);
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_DOUBLE_EQ(r.p_less, 1.0);
  EXPECT_DOUBLE_EQ(r.p_greater, 1.0);
}

TEST(Wilcoxon, ScratchReuseMatchesReferenceBitForBit) {
  // The allocation-free path (reused scratch, bounded DP rows, single-pass
  // midranks) must reproduce the retained pre-optimization implementation
  // exactly — every result field, exact and approximate branches, heavy
  // ties included. The scratch is deliberately reused across wildly
  // different sample sizes to catch stale-buffer bugs.
  util::Xoshiro256ss rng(99);
  WilcoxonScratch scratch;
  const std::size_t sizes[][2] = {{1, 1},  {3, 5},   {10, 10}, {20, 20},
                                  {7, 33}, {25, 25}, {50, 50}, {4, 4}};
  for (int round = 0; round < 20; ++round) {
    for (const auto& s : sizes) {
      std::vector<double> x, y;
      // Quantized values force tie groups (back-off slot counts are
      // integers in practice); occasionally use continuous values.
      const bool quantize = (round % 3) != 0;
      for (std::size_t i = 0; i < s[0]; ++i) {
        const double v = rng.uniform(0, 16);
        x.push_back(quantize ? std::floor(v) : v);
      }
      for (std::size_t i = 0; i < s[1]; ++i) {
        const double v = rng.uniform(0, 16) * 0.8;
        y.push_back(quantize ? std::floor(v) : v);
      }
      const auto fast = wilcoxon_rank_sum(x, y, WilcoxonOptions{}, scratch);
      const auto ref = wilcoxon_rank_sum_reference(x, y);
      EXPECT_EQ(fast.exact, ref.exact);
      EXPECT_EQ(fast.w_y, ref.w_y);
      EXPECT_EQ(fast.p_less, ref.p_less);
      EXPECT_EQ(fast.p_greater, ref.p_greater);
      EXPECT_EQ(fast.p_two_sided, ref.p_two_sided);
      EXPECT_EQ(fast.z, ref.z);
    }
  }
}

TEST(Wilcoxon, BatchMatchesScalarBitForBit) {
  // wilcoxon_rank_sum_batch reorders evaluation (exact-DP items first,
  // ascending size) and applies the margin shift into shared scratch, but
  // each item is an independent test: results[i] must equal the scalar
  // wilcoxon_rank_sum(x_i, y_i + shift_i) call it replaces, field for
  // field, under heavy scratch reuse across mixed exact/approx sizes.
  util::Xoshiro256ss rng(123);
  WilcoxonScratch batch_scratch;
  WilcoxonScratch scalar_scratch;
  for (int round = 0; round < 10; ++round) {
    const std::size_t sizes[][2] = {{25, 25}, {3, 5},  {10, 10}, {1, 1},
                                    {50, 50}, {7, 33}, {20, 20}};
    std::vector<std::vector<double>> xs, ys;
    std::vector<WilcoxonBatchItem> items;
    std::vector<double> shifts;
    for (const auto& s : sizes) {
      std::vector<double> x, y;
      const bool quantize = (round % 3) != 0;
      for (std::size_t i = 0; i < s[0]; ++i) {
        const double v = rng.uniform(0, 16);
        x.push_back(quantize ? std::floor(v) : v);
      }
      for (std::size_t i = 0; i < s[1]; ++i) {
        const double v = rng.uniform(0, 16) * 0.8;
        y.push_back(quantize ? std::floor(v) : v);
      }
      xs.push_back(std::move(x));
      ys.push_back(std::move(y));
      shifts.push_back(rng.uniform(0, 0.25));
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      WilcoxonBatchItem item;
      item.x = xs[i];
      item.y = ys[i];
      item.shift = shifts[i];
      items.push_back(item);
    }
    std::vector<RankSumResult> results(items.size());
    wilcoxon_rank_sum_batch(items, results, batch_scratch);
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::vector<double> shifted(ys[i]);
      for (double& v : shifted) v += shifts[i];
      const auto ref =
          wilcoxon_rank_sum(xs[i], shifted, WilcoxonOptions{}, scalar_scratch);
      EXPECT_EQ(results[i].exact, ref.exact) << "item " << i;
      EXPECT_EQ(results[i].w_y, ref.w_y) << "item " << i;
      EXPECT_EQ(results[i].p_less, ref.p_less) << "item " << i;
      EXPECT_EQ(results[i].p_greater, ref.p_greater) << "item " << i;
      EXPECT_EQ(results[i].p_two_sided, ref.p_two_sided) << "item " << i;
      EXPECT_EQ(results[i].z, ref.z) << "item " << i;
    }
  }
}

// --- Monitor end-to-end on a bare PHY -----------------------------------------

struct FixedPositions : phy::PositionProvider {
  explicit FixedPositions(std::vector<geom::Vec2> p) : pos(std::move(p)) {}
  std::vector<geom::Vec2> pos;
  geom::Vec2 position(NodeId node, SimTime) const override { return pos.at(node); }
};

struct MonitorFixture {
  // S at node 0, monitor R at node 1, 200 m apart, clean channel.
  MonitorFixture() : prop(phy::PropagationParams{}, 3),
                     positions({{0, 0}, {200, 0}}),
                     channel(sim, prop, positions) {
    for (NodeId i = 0; i < 2; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(i, channel));
      macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
      timelines.push_back(std::make_unique<phy::CsTimeline>());
      radios.back()->add_listener(timelines.back().get());
    }
  }

  Monitor& attach_monitor(MonitorConfig cfg) {
    cfg.separation_m = 200;
    monitor = MonitorFactory(sim, *macs[1], *timelines[1]).watch(0, cfg);
    return *monitor;
  }

  /// Keeps the sender's queue topped up until `until`.
  void keep_feeding(SimTime until, std::uint64_t base) {
    next_id = base;
    feeder = [this, until] {
      for (int i = 0; i < 10; ++i) macs[0]->enqueue(1, 512, next_id++);
      if (sim.now() < until) sim.after(100 * kMillisecond, feeder);
    };
    sim.at(sim.now(), feeder);
  }

  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop;
  FixedPositions positions;
  phy::Channel channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  std::unique_ptr<Monitor> monitor;
  std::function<void()> feeder;
  std::uint64_t next_id = 1;
};

TEST(Monitor, HonestSenderProducesNoFlags) {
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.sample_size = 10;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);

  EXPECT_GT(mon.stats().samples, 50u);
  EXPECT_GT(mon.stats().windows, 4u);
  EXPECT_EQ(mon.stats().flagged_windows, 0u);
  EXPECT_EQ(mon.stats().seq_off_violations, 0u);
  EXPECT_EQ(mon.stats().attempt_violations, 0u);
  EXPECT_EQ(mon.stats().impossible_backoff, 0u);
}

TEST(Monitor, FullMisbehaviorIsFlaggedFast) {
  MonitorFixture f;
  f.macs[0]->set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(90.0));
  MonitorConfig cfg;
  cfg.sample_size = 10;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);

  EXPECT_GT(mon.stats().windows, 4u);
  EXPECT_EQ(mon.stats().flagged_windows, mon.stats().windows);
  EXPECT_GT(mon.stats().impossible_backoff, 0u);  // blatant at PM=90
  EXPECT_NEAR(mon.flag_rate(), 1.0, 1e-9);
}

TEST(Monitor, FrozenSeqOffsetIsDeterministicallyCaught) {
  MonitorFixture f;
  f.macs[0]->set_announce_policy(std::make_unique<mac::FrozenSeqOffAnnounce>(3));
  MonitorConfig cfg;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(5 * kSecond, 1);
  f.sim.run_until(5 * kSecond);

  EXPECT_GT(mon.stats().rts_observed, 10u);
  EXPECT_GT(mon.stats().seq_off_violations, 8u);
}

TEST(Monitor, InactiveMonitorIgnoresTraffic) {
  MonitorFixture f;
  MonitorConfig cfg;
  Monitor& mon = f.attach_monitor(cfg);
  mon.set_active(false);
  f.keep_feeding(3 * kSecond, 1);
  f.sim.run_until(3 * kSecond);
  EXPECT_EQ(mon.stats().rts_observed, 0u);
  EXPECT_EQ(mon.stats().samples, 0u);

  mon.set_active(true);
  f.keep_feeding(6 * kSecond, 100000);
  f.sim.run_until(6 * kSecond);
  EXPECT_GT(mon.stats().rts_observed, 0u);
}

TEST(Monitor, TracksTrafficIntensityOnline) {
  MonitorFixture f;
  MonitorConfig cfg;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);
  // Saturated two-node link: the channel is busy most of the time.
  const double direct = f.timelines[1]->busy_fraction(5 * kSecond, 10 * kSecond);
  EXPECT_NEAR(mon.traffic_intensity(), direct, 0.15);
  EXPECT_GT(mon.traffic_intensity(), 0.3);
}


TEST(Monitor, CleanWindowFilterRejectsQueueGaps) {
  // A slow source (queue empty between packets) produces mostly gap
  // windows; the filter must reject them rather than let them pollute the
  // sample population.
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.record_samples = true;
  Monitor& mon = f.attach_monitor(cfg);
  // ~20 packets/s: inter-arrival 50 ms >> CW, so first-attempt windows
  // after an idle queue are gap windows.
  std::function<void()> slow = [&] {
    f.macs[0]->enqueue(1, 512, f.next_id++);
    if (f.sim.now() < 10 * kSecond) f.sim.after(50 * kMillisecond, slow);
  };
  f.sim.at(0, slow);
  f.sim.run_until(10 * kSecond);

  EXPECT_GT(mon.stats().skipped_queue_gap, 100u);
  // Accepted samples (if any) stayed within CW + slack.
  for (const auto& rec : mon.sample_log()) {
    if (!rec.accepted) continue;
    EXPECT_LE(rec.observed, 31.0 + cfg.queue_gap_slack_slots + 1e-9);
  }
  EXPECT_EQ(mon.stats().flagged_windows, 0u);
}

TEST(Monitor, SaturatedHonestSamplesMatchDictatedExactly) {
  // Clean channel + backlogged sender: every accepted sample must satisfy
  // y == x exactly (the estimator accounting is exact; see also the
  // two-node harness in bench/ablation_estimator).
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.record_samples = true;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);

  std::size_t accepted = 0;
  for (const auto& rec : mon.sample_log()) {
    if (!rec.accepted) continue;
    ++accepted;
    EXPECT_NEAR(rec.observed, rec.expected, 1e-6);
  }
  EXPECT_GT(accepted, 100u);
}

TEST(Monitor, RetryCheaterCaughtByAttemptCheck) {
  // Hidden-terminal line (see examples/misbehavior_zoo): S's collisions at
  // R force retransmissions; the stuck-Attempt# cheater is then caught by
  // the MD5/Attempt check even though its timing matches its announcement.
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  struct Line : phy::PositionProvider {
    geom::Vec2 position(NodeId n, SimTime) const override {
      static constexpr double xs[] = {0, 200, 600, 800};
      return {xs[n], 0};
    }
  } positions;
  phy::Channel channel(sim, prop, positions);
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  for (NodeId i = 0; i < 4; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
    timelines.push_back(std::make_unique<phy::CsTimeline>());
    radios.back()->add_listener(timelines.back().get());
  }
  macs[0]->set_backoff_policy(std::make_unique<mac::NoExponentialBackoff>(31));
  macs[0]->set_announce_policy(std::make_unique<mac::StuckAttemptAnnounce>());

  MonitorConfig mc;
  mc.separation_m = 200;
  const auto mon_ptr = MonitorFactory(sim, *macs[1], *timelines[1]).watch(0, mc);
  Monitor& mon = *mon_ptr;

  const SimTime stop = 30 * kSecond;
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    while (macs[0]->queue_length() < 20) macs[0]->enqueue(1, 512, id++);
    macs[2]->enqueue(3, 512, id++);
    if (sim.now() < stop) sim.after(25 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(stop);

  EXPECT_GT(macs[0]->stats().retries, 100u);
  EXPECT_GT(mon.stats().attempt_violations, 50u);
  EXPECT_GT(mon.flag_rate(), 0.5);
}

TEST(Monitor, ThirdPartyMonitorCollectsSamples) {
  // The monitor need not be the flow's receiver: a third node overhearing
  // S's frames anchors windows from DATA durations and overheard ACKs.
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  struct Tri : phy::PositionProvider {
    geom::Vec2 position(NodeId n, SimTime) const override {
      static constexpr double xs[] = {0, 200, 100};
      static constexpr double ys[] = {0, 0, 170};
      return {xs[n], ys[n]};
    }
  } positions;
  phy::Channel channel(sim, prop, positions);
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  for (NodeId i = 0; i < 3; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
    timelines.push_back(std::make_unique<phy::CsTimeline>());
    radios.back()->add_listener(timelines.back().get());
  }
  macs[0]->set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(85));

  MonitorConfig mc;
  mc.separation_m = 200;
  // Node 2 is the third party.
  const auto mon_ptr = MonitorFactory(sim, *macs[2], *timelines[2]).watch(0, mc);
  Monitor& mon = *mon_ptr;

  const SimTime stop = 20 * kSecond;
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    while (macs[0]->queue_length() < 20) macs[0]->enqueue(1, 512, id++);
    if (sim.now() < stop) sim.after(50 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(stop);

  EXPECT_GT(mon.stats().samples, 100u);
  EXPECT_GT(mon.flag_rate(), 0.8);
}

TEST(Monitor, BusyCreditAndIdleCorrectionKnobs) {
  // The literal-Eq.1 variant must still never flag a saturated honest
  // sender on a clean channel (no busy time, p(I|I) < 1 only shrinks y
  // within the margin? No: on a clean channel rho ~ 1 -> check it holds).
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.apply_idle_correction = true;
  cfg.busy_credit_factor = 1.0;
  cfg.record_samples = true;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);
  EXPECT_GT(mon.stats().windows, 10u);
  // The two-station channel has rho ~ 0.9; Eq. 3 with n=k=5 keeps p(I|I)
  // high enough that the margin absorbs the discount.
  EXPECT_LT(mon.flag_rate(), 0.2);
}


TEST(Wilcoxon, MatchesPublishedCriticalValue) {
  // Published one-tailed 5% critical value for n1 = n2 = 10:
  // Mann-Whitney U <= 27, i.e. rank sum W <= 82 (W = U + n(n+1)/2).
  // Verify the exact DP reproduces the table: P(W <= 82) <= 0.05 < P(W <= 83).
  // Construct samples with arbitrary distinct values achieving given W.
  auto p_for_w = [](double target_w) {
    // y gets ranks that sum to target_w using 10 distinct values.
    // Start from ranks {1..10} (W=55) and bump the largest rank upward.
    std::vector<double> combined(20);
    for (int i = 0; i < 20; ++i) combined[i] = i + 1;
    // Choose y-ranks greedily.
    std::vector<int> y_ranks{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    double w = 55;
    for (int i = 9; i >= 0 && w < target_w; --i) {
      const int max_rank = 20 - (9 - i);
      const double room = max_rank - y_ranks[i];
      const double need = target_w - w;
      const int bump = static_cast<int>(std::min(room, need));
      y_ranks[i] += bump;
      w += bump;
    }
    std::vector<double> x, y;
    std::vector<bool> used(21, false);
    for (int r : y_ranks) {
      y.push_back(r);
      used[r] = true;
    }
    for (int r = 1; r <= 20 && x.size() < 10; ++r) {
      if (!used[r]) x.push_back(r);
    }
    return wilcoxon_rank_sum(x, y).p_less;
  };
  EXPECT_LE(p_for_w(82), 0.05);
  EXPECT_GT(p_for_w(83), 0.05);
}

TEST(Monitor, PrsUnawareBaselineCannotProveViolations) {
  // Baseline mode: the monitor does not know the dictated values, so no
  // deterministic checks can fire and even a blatant attacker survives a
  // clean two-node channel (where its shortened back-offs still look like
  // plausible draws from [0, CW]).
  MonitorFixture f;
  f.macs[0]->set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(50));
  MonitorConfig cfg;
  cfg.prs_aware = false;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(10 * kSecond, 1);
  f.sim.run_until(10 * kSecond);

  EXPECT_EQ(mon.stats().impossible_backoff, 0u);
  EXPECT_EQ(mon.stats().seq_off_violations, 0u);
  EXPECT_GT(mon.stats().windows, 10u);
  // PM=50 halves a uniform: statistically visible in principle, but at
  // sample size 10 with the margin the baseline has little power.
  // The full monitor on the same setup flags everything (see
  // Monitor.FullMisbehaviorIsFlaggedFast).
}

TEST(Monitor, DecodedRetentionBoundsTheFrameRing) {
  // The prune horizon is a config knob now; a short retention keeps the
  // ring small while the default (4 s) retains everything a max-window
  // verification can ask for. Shortening retention must not disturb the
  // monitor's verdict stream on this clean saturated link (every window
  // closes long before frames age out of even the short ring).
  MonitorConfig short_cfg;
  short_cfg.sample_size = 10;
  short_cfg.decoded_retention = 500 * kMillisecond;
  MonitorConfig default_cfg;
  default_cfg.sample_size = 10;

  std::size_t short_retained = 0, default_retained = 0;
  MonitorStats short_stats, default_stats;
  for (int which = 0; which < 2; ++which) {
    MonitorFixture f;
    Monitor& mon = f.attach_monitor(which == 0 ? short_cfg : default_cfg);
    f.keep_feeding(10 * kSecond, 1);
    f.sim.run_until(10 * kSecond);
    (which == 0 ? short_retained : default_retained) = mon.decoded_retained();
    (which == 0 ? short_stats : default_stats) = mon.stats();
  }
  EXPECT_GT(short_retained, 0u);
  EXPECT_LT(short_retained, default_retained);
  EXPECT_EQ(short_stats, default_stats);
}

TEST(Report, RendersVerdictAndCounters) {
  MonitorFixture f;
  f.macs[0]->set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(85));
  MonitorConfig cfg;
  Monitor& mon = f.attach_monitor(cfg);
  f.keep_feeding(8 * kSecond, 1);
  f.sim.run_until(8 * kSecond);

  const std::string verdict = render_verdict(mon);
  EXPECT_NE(verdict.find("MISBEHAVING"), std::string::npos);
  EXPECT_NE(verdict.find("node 0"), std::string::npos);

  const std::string report = render_report(mon);
  EXPECT_NE(report.find("impossible back-off"), std::string::npos);
  EXPECT_NE(report.find("windows"), std::string::npos);
  EXPECT_NE(report.find("MISBEHAVING"), std::string::npos);

  // An unused monitor reports insufficient data.
  MonitorFixture g;
  MonitorConfig cfg2;
  Monitor& idle_mon = g.attach_monitor(cfg2);
  EXPECT_NE(render_verdict(idle_mon).find("INSUFFICIENT DATA"),
            std::string::npos);
}


TEST(Wilcoxon, ExactTailsOverlapAtTheObservedValue) {
  // For the exact permutation distribution, P(W <= w) + P(W >= w) =
  // 1 + P(W = w) >= 1: both one-sided p-values include the point mass.
  util::Xoshiro256ss rng(91);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> x, y;
    for (int i = 0; i < 8; ++i) {
      x.push_back(rng.uniform_int(16));  // integer values: ties happen
      y.push_back(rng.uniform_int(16));
    }
    const auto r = wilcoxon_rank_sum(x, y);
    ASSERT_TRUE(r.exact);
    EXPECT_GE(r.p_less + r.p_greater, 1.0 - 1e-12);
    EXPECT_GE(r.p_less, 0.0);
    EXPECT_LE(r.p_less, 1.0);
    EXPECT_GE(r.p_greater, 0.0);
    EXPECT_LE(r.p_greater, 1.0);
  }
}

TEST(Wilcoxon, TranslationInvariance) {
  // Adding a constant to both samples must not change any p-value.
  util::Xoshiro256ss rng(92);
  std::vector<double> x, y;
  for (int i = 0; i < 12; ++i) {
    x.push_back(rng.uniform(0, 32));
    y.push_back(rng.uniform(0, 32) * 0.6);
  }
  const auto base = wilcoxon_rank_sum(x, y);
  for (double& v : x) v += 1000;
  for (double& v : y) v += 1000;
  const auto shifted = wilcoxon_rank_sum(x, y);
  EXPECT_DOUBLE_EQ(base.p_less, shifted.p_less);
  EXPECT_DOUBLE_EQ(base.p_greater, shifted.p_greater);
}

TEST(Wilcoxon, UnequalSampleSizes) {
  // nx != ny is routine for the baseline monitor; check exact path sanity.
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> y{0.1, 0.2};
  const auto r = wilcoxon_rank_sum(x, y);
  EXPECT_TRUE(r.exact);
  // y holds ranks {1,2}: P(W <= 3) = 1 / C(10,2) = 1/45.
  EXPECT_NEAR(r.p_less, 1.0 / 45.0, 1e-12);
}

}  // namespace
}  // namespace manet::detect
