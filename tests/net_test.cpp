#include <gtest/gtest.h>

#include <set>

#include "net/load.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "net/traffic.hpp"

namespace manet::net {
namespace {

TEST(Topology, GridPlacesNodesOnLattice) {
  const auto nodes = grid_topology(7, 8, 240.0, {100, 50});
  ASSERT_EQ(nodes.size(), 56u);
  EXPECT_EQ(nodes[0], (geom::Vec2{100, 50}));
  EXPECT_EQ(nodes[1], (geom::Vec2{340, 50}));
  EXPECT_EQ(nodes[8], (geom::Vec2{100, 290}));
  EXPECT_EQ(nodes[55], (geom::Vec2{100 + 7 * 240.0, 50 + 6 * 240.0}));
  // Grid neighbors at 240 m are within the 250 m tx range; diagonals not.
  EXPECT_NEAR(geom::distance(nodes[0], nodes[1]), 240.0, 1e-9);
  EXPECT_GT(geom::distance(nodes[0], nodes[9]), 250.0);
}

TEST(Topology, GridCenterIndexIsInterior) {
  EXPECT_EQ(grid_center_index(7, 8), 3u * 8u + 4u);
  EXPECT_EQ(grid_center_index(1, 1), 0u);
}

TEST(Topology, RandomConnectedIsConnected) {
  // Connectivity at the 550 m sensing range (see Network for why 250 m
  // would be hopeless at the paper's density).
  util::Xoshiro256ss rng(5);
  const auto nodes = random_connected_topology(112, 3000, 3000, 550, rng);
  ASSERT_EQ(nodes.size(), 112u);
  EXPECT_TRUE(is_connected(nodes, 550));
  for (const auto& p : nodes) {
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, 3000);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, 3000);
  }
}

TEST(Topology, IsConnectedDetectsPartition) {
  std::vector<geom::Vec2> nodes{{0, 0}, {100, 0}, {1000, 0}};
  EXPECT_FALSE(is_connected(nodes, 250));
  EXPECT_TRUE(is_connected(nodes, 950));
  EXPECT_TRUE(is_connected({}, 1));
}

TEST(Topology, NeighborsWithin) {
  const auto nodes = grid_topology(3, 3, 240.0);
  const auto nbrs = neighbors_within(nodes, 4, 250.0);  // center of 3x3
  EXPECT_EQ(nbrs.size(), 4u);  // the four lattice neighbors
  const auto corner = neighbors_within(nodes, 0, 250.0);
  EXPECT_EQ(corner.size(), 2u);
}

TEST(Mobility, StaticReturnsFixedPositions) {
  StaticMobility m({{1, 2}, {3, 4}});
  EXPECT_EQ(m.position(0, 0), (geom::Vec2{1, 2}));
  EXPECT_EQ(m.position(1, 99 * kSecond), (geom::Vec2{3, 4}));
}

TEST(Mobility, RandomWaypointStaysInFieldAndRespectsSpeed) {
  RandomWaypointParams params;
  params.width = 1000;
  params.height = 800;
  params.min_speed = 1.0;
  params.max_speed = 20.0;
  RandomWaypoint rwp({{500, 400}, {100, 100}}, params, 77);

  geom::Vec2 prev0 = rwp.position(0, 0);
  for (int t = 1; t <= 600; ++t) {
    const geom::Vec2 p = rwp.position(0, t * kSecond);
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 1000);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 800);
    // One second apart: displacement bounded by max speed.
    EXPECT_LE(geom::distance(prev0, p), params.max_speed + 1e-6);
    prev0 = p;
  }
}

TEST(Mobility, RandomWaypointIsDeterministicPerSeed) {
  RandomWaypointParams params;
  RandomWaypoint a({{0, 0}}, params, 5);
  RandomWaypoint b({{0, 0}}, params, 5);
  RandomWaypoint c({{0, 0}}, params, 6);
  bool any_diff = false;
  for (int t = 0; t < 100; ++t) {
    const auto pa = a.position(0, t * kSecond);
    EXPECT_EQ(pa, b.position(0, t * kSecond));
    if (!(pa == c.position(0, t * kSecond))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Mobility, PauseHoldsNodeAtWaypoint) {
  RandomWaypointParams params;
  params.width = params.height = 100;  // short legs
  params.min_speed = params.max_speed = 10.0;
  params.pause = 50 * kSecond;
  RandomWaypoint rwp({{50, 50}}, params, 3);
  // With 100 m field and 10 m/s, a leg takes <= ~14 s, then 50 s pause:
  // sample densely and require at least one long stationary stretch.
  int stationary = 0;
  geom::Vec2 prev = rwp.position(0, 0);
  for (int t = 1; t < 300; ++t) {
    const geom::Vec2 p = rwp.position(0, t * kSecond);
    if (geom::distance(prev, p) < 1e-9) ++stationary;
    prev = p;
  }
  EXPECT_GT(stationary, 100);
}

// ---------------------------------------------------------------------------

ScenarioConfig small_grid() {
  ScenarioConfig cfg;
  cfg.topology = TopologyKind::kGrid;
  cfg.grid_rows = 3;
  cfg.grid_cols = 3;
  cfg.num_flows = 4;
  cfg.sim_seconds = 10;
  cfg.seed = 11;
  return cfg;
}

TEST(Scenario, DeclaredDefaultsMatchTable1) {
  util::Config c;
  ScenarioConfig::declare(c);
  const ScenarioConfig s = ScenarioConfig::from_config(c);
  EXPECT_EQ(s.topology, TopologyKind::kGrid);
  EXPECT_EQ(s.grid_rows * s.grid_cols, 56u);       // 56 nodes (grid)
  EXPECT_EQ(s.random_nodes, 112u);                 // 112 nodes (random)
  EXPECT_DOUBLE_EQ(s.area_width_m, 3000.0);        // 3000 m x 3000 m
  EXPECT_DOUBLE_EQ(s.grid_spacing_m, 240.0);       // one-hop spacing
  EXPECT_DOUBLE_EQ(s.prop.tx_range_m, 250.0);      // transmission range
  EXPECT_DOUBLE_EQ(s.prop.cs_range_m, 550.0);      // sensing range
  EXPECT_DOUBLE_EQ(s.max_speed_mps, 20.0);         // 0-20 m/s
  EXPECT_EQ(s.payload_bytes, 512u);                // packet size
  EXPECT_EQ(s.mac.queue_capacity, 50u);            // queue length
  EXPECT_DOUBLE_EQ(s.sim_seconds, 300.0);          // simulation time
}

TEST(Scenario, ParsersRejectUnknownNames) {
  EXPECT_THROW(parse_topology("ring"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("tcp"), std::invalid_argument);
  EXPECT_THROW(parse_mobility("brownian"), std::invalid_argument);
  EXPECT_EQ(parse_topology("random"), TopologyKind::kRandom);
  EXPECT_EQ(parse_traffic("cbr"), TrafficKind::kCbr);
  EXPECT_EQ(parse_mobility("rwp"), MobilityKind::kRandomWaypoint);
}

TEST(Network, BuildsGridWithCenterNode) {
  ScenarioConfig cfg;
  cfg.sim_seconds = 1;
  Network net(cfg);
  EXPECT_EQ(net.size(), 56u);
  EXPECT_EQ(net.center_node(), 28u);
  // The grid is centered in the 3000x3000 field.
  const geom::Vec2 p0 = net.position_of(0, 0);
  EXPECT_GT(p0.x, 0);
  EXPECT_GT(p0.y, 0);
  const auto nbrs = net.neighbors(net.center_node(), 250, 0);
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Network, AddFlowValidatesEndpoints) {
  Network net(small_grid());
  EXPECT_THROW(net.add_flow(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(net.add_flow(0, 99, 10), std::invalid_argument);
  auto& flow = net.add_flow(0, 1, 10);
  EXPECT_EQ(flow.source(), 0u);
  EXPECT_EQ(flow.destination(), 1u);
}

TEST(Network, RandomFlowsHaveDistinctSourcesAndOneHopDests) {
  Network net(small_grid());
  net.build_random_flows();
  EXPECT_GT(net.flow_count(), 0u);
  EXPECT_LE(net.flow_count(), 4u);
  std::set<NodeId> sources;
  for (std::size_t i = 0; i < net.flow_count(); ++i) {
    auto& f = net.flow(i);
    EXPECT_TRUE(sources.insert(f.source()).second) << "duplicate source";
    const double d = geom::distance(net.position_of(f.source(), 0),
                                    net.position_of(f.destination(), 0));
    EXPECT_LE(d, 250.0);
  }
}

TEST(Network, TrafficFlowsEndToEnd) {
  ScenarioConfig cfg = small_grid();
  Network net(cfg);
  net.add_flow(4, 1, 50);  // center -> top, 50 pkt/s
  const SimTime stop = seconds_to_time(5);
  net.start_traffic(0, stop);
  net.run_until(stop);
  EXPECT_GT(net.mac(1).stats().packets_delivered, 100u);
  EXPECT_EQ(net.mac(4).stats().retry_drops, 0u);
  // Busy fraction at the receiver is sane and nonzero.
  const double busy = net.timeline(1).busy_fraction(0, stop);
  EXPECT_GT(busy, 0.05);
  EXPECT_LT(busy, 0.9);
}

TEST(Network, SameSeedReproducesExactly) {
  auto run = [] {
    ScenarioConfig cfg = small_grid();
    Network net(cfg);
    net.build_random_flows();
    const SimTime stop = seconds_to_time(5);
    net.start_traffic(0, stop);
    net.run_until(stop);
    std::uint64_t sig = 0;
    for (NodeId i = 0; i < net.size(); ++i) {
      sig = sig * 1315423911u + net.mac(i).stats().packets_delivered;
      sig = sig * 1315423911u + net.mac(i).stats().rts_sent;
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

TEST(Traffic, CbrGeneratesAtConfiguredRate) {
  ScenarioConfig cfg = small_grid();
  cfg.traffic = TrafficKind::kCbr;
  Network net(cfg);
  auto& flow = net.add_flow(0, 1, 40);
  const SimTime stop = seconds_to_time(10);
  net.start_traffic(0, stop);
  net.run_until(stop);
  EXPECT_NEAR(static_cast<double>(flow.generated()), 400.0, 5.0);
}

TEST(Traffic, PoissonGeneratesAtConfiguredMeanRate) {
  ScenarioConfig cfg = small_grid();
  cfg.traffic = TrafficKind::kPoisson;
  Network net(cfg);
  auto& flow = net.add_flow(0, 1, 40);
  const SimTime stop = seconds_to_time(20);
  net.start_traffic(0, stop);
  net.run_until(stop);
  // 800 expected, sd ~ 28.
  EXPECT_NEAR(static_cast<double>(flow.generated()), 800.0, 110.0);
}

TEST(Load, MeasuredBusyFractionIncreasesWithRate) {
  ScenarioConfig cfg = small_grid();
  const auto setup = [](Network& net) { net.build_random_flows(); };
  const double lo = measure_busy_fraction(cfg, 5, 4, setup, 1.0, 4.0);
  const double hi = measure_busy_fraction(cfg, 80, 4, setup, 1.0, 4.0);
  EXPECT_LT(lo, hi);
  EXPECT_GT(hi, 0.2);
}

TEST(Load, CalibratorHitsTarget) {
  ScenarioConfig cfg = small_grid();
  const auto result = calibrate_load(cfg, 0.35, {}, 0.04, 10);
  EXPECT_NEAR(result.measured_busy_fraction, 0.35, 0.08);
  EXPECT_GT(result.packets_per_second, 0.0);
}


TEST(Traffic, SetDestinationRedirectsFuturePackets) {
  ScenarioConfig cfg = small_grid();
  Network net(cfg);
  auto& flow = net.add_flow(4, 1, 50);
  const SimTime stop = seconds_to_time(6);
  net.start_traffic(0, stop);
  net.run_until(seconds_to_time(3));
  const auto delivered_1_before = net.mac(1).stats().packets_delivered;
  flow.set_destination(3);
  net.run_until(stop);

  // Node 1 stops receiving; node 3 starts.
  EXPECT_GT(delivered_1_before, 50u);
  EXPECT_LE(net.mac(1).stats().packets_delivered, delivered_1_before + 2);
  EXPECT_GT(net.mac(3).stats().packets_delivered, 50u);
}

TEST(Network, SinkRoutesThroughRouterWhenAodvEnabled) {
  ScenarioConfig cfg = small_grid();
  cfg.routing = RoutingKind::kAodv;
  Network net(cfg);
  EXPECT_NE(net.router(0), nullptr);
  // Submitting via the sink reaches the router's counters.
  net.sink(0).submit(1, 128, 5);
  net.run_until(seconds_to_time(1));
  EXPECT_EQ(net.router(0)->stats().originated, 1u);
  EXPECT_EQ(net.router(1)->stats().delivered, 1u);
}

TEST(Network, NoRouterWithoutAodv) {
  Network net(small_grid());
  EXPECT_EQ(net.router(0), nullptr);
}

}  // namespace
}  // namespace manet::net
