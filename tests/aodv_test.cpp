#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/aodv.hpp"
#include "net/network.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace manet::net {
namespace {

// --- RouteTable unit tests ----------------------------------------------------

TEST(RouteTable, LookupRespectsExpiry) {
  RouteTable t;
  t.update(5, Route{2, 1, 10, /*expires=*/1000});
  EXPECT_TRUE(t.lookup(5, 500).has_value());
  EXPECT_FALSE(t.lookup(5, 1000).has_value());
  EXPECT_FALSE(t.lookup(6, 0).has_value());
}

TEST(RouteTable, FresherSequenceNumberWins) {
  RouteTable t;
  t.update(5, Route{2, 3, 10, 1000});
  // Stale sequence number is rejected even with fewer hops.
  EXPECT_FALSE(t.update(5, Route{3, 1, 9, 2000}));
  EXPECT_EQ(t.lookup(5, 0)->next_hop, 2u);
  // Fresher sequence wins even with more hops.
  EXPECT_TRUE(t.update(5, Route{4, 7, 11, 2000}));
  EXPECT_EQ(t.lookup(5, 0)->next_hop, 4u);
}

TEST(RouteTable, EqualSequenceShorterPathWins) {
  RouteTable t;
  t.update(5, Route{2, 4, 10, 1000});
  EXPECT_TRUE(t.update(5, Route{3, 2, 10, 1000}));
  EXPECT_EQ(t.lookup(5, 0)->hop_count, 2u);
  // Equal seq, more hops via different neighbor: rejected.
  EXPECT_FALSE(t.update(5, Route{6, 5, 10, 1000}));
  // Same next hop refreshes.
  EXPECT_TRUE(t.update(5, Route{3, 2, 10, 5000}));
  EXPECT_TRUE(t.lookup(5, 4000).has_value());
}

TEST(RouteTable, SequenceWraparound) {
  RouteTable t;
  t.update(5, Route{2, 1, 0xFFFFFFF0u, 1000});
  // Wrapped-around "newer" sequence (signed comparison).
  EXPECT_TRUE(t.update(5, Route{3, 1, 5u, 1000}));
  EXPECT_EQ(t.lookup(5, 0)->next_hop, 3u);
}

TEST(RouteTable, InvalidateVia) {
  RouteTable t;
  t.update(5, Route{2, 1, 1, 1000});
  t.update(6, Route{2, 2, 1, 1000});
  t.update(7, Route{3, 1, 1, 1000});
  const auto affected = t.invalidate_via(2);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_FALSE(t.lookup(5, 0).has_value());
  EXPECT_TRUE(t.lookup(7, 0).has_value());
  EXPECT_EQ(t.size(), 1u);
}

// --- MAC broadcast -------------------------------------------------------------

TEST(Broadcast, GroupAddressedFrameReachesAllNeighborsWithoutHandshake) {
  ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = 3;
  cfg.num_flows = 0;
  Network net(cfg);

  net.mac(1).enqueue(kBroadcastNode, 64, 7);  // middle node broadcasts
  net.run_until(seconds_to_time(1));

  EXPECT_EQ(net.mac(1).stats().broadcasts_sent, 1u);
  EXPECT_EQ(net.mac(1).stats().rts_sent, 0u);       // no RTS for broadcast
  EXPECT_EQ(net.mac(0).stats().broadcasts_received, 1u);
  EXPECT_EQ(net.mac(2).stats().broadcasts_received, 1u);
  EXPECT_EQ(net.mac(0).stats().ack_sent, 0u);       // no ACK either
}

// --- AODV end to end ------------------------------------------------------------

/// A 1xN line with 240 m spacing: only adjacent nodes can decode each
/// other, so node 0 -> node N-1 requires N-2 forwarding hops.
ScenarioConfig line(std::size_t n) {
  ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = n;
  cfg.num_flows = 0;
  cfg.routing = RoutingKind::kAodv;
  cfg.flow_pattern = FlowPattern::kAny;
  cfg.area_width_m = 3000;
  cfg.area_height_m = 500;
  return cfg;
}

TEST(Aodv, TwoHopRouteDiscoveryAndDelivery) {
  Network net(line(3));
  net.add_flow(0, 2, 20);
  const SimTime stop = seconds_to_time(5);
  net.start_traffic(0, stop);
  net.run_until(stop);

  const AodvStats& origin = net.router(0)->stats();
  const AodvStats& dest = net.router(2)->stats();
  EXPECT_GT(origin.originated, 50u);
  EXPECT_GT(dest.delivered, 50u);
  // Nearly everything delivered (allow discovery transients).
  EXPECT_GE(dest.delivered + 5, origin.originated);
  EXPECT_GT(net.router(1)->stats().forwarded, 50u);
  // Route at the origin points to the relay.
  const auto route = net.router(0)->routes().lookup(2, net.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 2u);
}

TEST(Aodv, LongChainDelivery) {
  Network net(line(6));  // 5 hops
  net.add_flow(0, 5, 10);
  const SimTime stop = seconds_to_time(8);
  net.start_traffic(0, stop);
  net.run_until(stop);

  EXPECT_GT(net.router(5)->stats().delivered, 40u);
  const auto route = net.router(0)->routes().lookup(5, net.simulator().now());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count, 5u);
}

TEST(Aodv, RreqFloodIsDuplicateSuppressed) {
  Network net(line(6));
  net.add_flow(0, 5, 10);
  net.start_traffic(0, seconds_to_time(2));
  net.run_until(seconds_to_time(2));
  // Each discovery floods each node at most once: total RREQ transmissions
  // stay linear in node count (a couple of discoveries may run).
  std::uint64_t rreqs = 0;
  for (NodeId i = 0; i < net.size(); ++i) rreqs += net.router(i)->stats().rreq_sent;
  EXPECT_LT(rreqs, 6u * 8u);
}

TEST(Aodv, UnreachableDestinationFailsCleanly) {
  ScenarioConfig cfg = line(3);
  cfg.grid_spacing_m = 700;  // neighbors beyond even sensing range
  Network net(cfg);
  net.add_flow(0, 2, 10);
  net.start_traffic(0, seconds_to_time(3));
  net.run_until(seconds_to_time(3));

  const AodvStats& s = net.router(0)->stats();
  EXPECT_EQ(net.router(2)->stats().delivered, 0u);
  EXPECT_GT(s.discovery_failures, 0u);
  EXPECT_GT(s.drops_no_route, 0u);
}

TEST(Aodv, GridCornerToCornerMultiHop) {
  ScenarioConfig cfg;  // 7x8 grid
  cfg.num_flows = 0;
  cfg.routing = RoutingKind::kAodv;
  cfg.flow_pattern = FlowPattern::kAny;
  Network net(cfg);
  net.add_flow(0, static_cast<NodeId>(net.size() - 1), 10);
  const SimTime stop = seconds_to_time(8);
  net.start_traffic(0, stop);
  net.run_until(stop);

  const auto& dest = *net.router(static_cast<NodeId>(net.size() - 1));
  EXPECT_GT(dest.stats().delivered, 30u);
  const auto route =
      net.router(0)->routes().lookup(static_cast<NodeId>(net.size() - 1),
                                     net.simulator().now());
  ASSERT_TRUE(route.has_value());
  // Corner to corner on a 7x8 grid of 240 m spacing needs >= 13 hops
  // (Manhattan distance 6 + 7) since diagonals exceed the 250 m range.
  EXPECT_GE(route->hop_count, 13u);
}

TEST(Aodv, LinkBreakTriggersRerrAndInvalidation) {
  // Mobile relay: the middle node walks out of range mid-run.
  struct JumpyMiddle : phy::PositionProvider {
    geom::Vec2 position(NodeId node, SimTime at) const override {
      if (node == 0) return {0, 0};
      if (node == 2) return {480, 0};
      // Node 1 relays at (240,0) until t=4s, then jumps far away.
      return at < 4 * kSecond ? geom::Vec2{240, 0} : geom::Vec2{240, 2000};
    }
  };
  // Build the pieces manually to inject the custom mobility.
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  JumpyMiddle positions;
  phy::Channel channel(sim, prop, positions);
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<AodvRouter>> routers;
  for (NodeId i = 0; i < 3; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
    routers.push_back(std::make_unique<AodvRouter>(sim, *macs.back()));
  }

  // Stream 0 -> 2 via 1.
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    routers[0]->submit(2, 512, id++);
    if (sim.now() < 8 * kSecond) sim.after(100 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(8 * kSecond);

  EXPECT_GT(routers[2]->stats().delivered, 20u);        // worked before the jump
  EXPECT_GT(routers[0]->stats().drops_link_failure +
                routers[0]->stats().drops_no_route +
                routers[0]->stats().discovery_failures,
            0u);                                        // failure was noticed
  // The stale route via node 1 is gone.
  const auto route = routers[0]->routes().lookup(2, sim.now());
  EXPECT_FALSE(route.has_value());
}

TEST(Aodv, RandomMultiHopFlowsDeliverAcrossTheGrid) {
  ScenarioConfig cfg;
  cfg.num_flows = 10;
  cfg.routing = RoutingKind::kAodv;
  cfg.flow_pattern = FlowPattern::kAny;
  cfg.packets_per_second = 2;
  cfg.seed = 77;
  Network net(cfg);
  net.build_random_flows();
  const SimTime stop = seconds_to_time(10);
  net.start_traffic(0, stop);
  net.run_until(stop);

  std::uint64_t originated = 0, delivered = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    originated += net.router(i)->stats().originated;
    delivered += net.router(i)->stats().delivered;
  }
  EXPECT_GT(originated, 100u);
  // Multi-hop 802.11 chains self-interfere heavily (inter-flow and
  // intra-flow collisions); a majority delivered is the realistic bar.
  EXPECT_GT(static_cast<double>(delivered) / static_cast<double>(originated), 0.5);
}

}  // namespace
}  // namespace manet::net
