// Tests for the auxiliary instrumentation: the Bianchi-Tinnirello
// competitor estimator, end-to-end flow statistics, and the frame tracer.
#include <gtest/gtest.h>

#include <memory>

#include "detect/bianchi.hpp"
#include "net/flow_stats.hpp"
#include "net/network.hpp"
#include "net/tracer.hpp"

namespace manet {
namespace {

TEST(CompetingTerminals, StartsAtOneWithoutData) {
  detect::CompetingTerminalEstimator est;
  EXPECT_EQ(est.competitors(), 1u);
  EXPECT_DOUBLE_EQ(est.collision_probability(), 0.0);
}

TEST(CompetingTerminals, CleanChannelEstimatesFewCompetitors) {
  // Two-station link: no collisions at the observer, so the collision
  // probability stays ~0 and the estimate stays small.
  net::ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = 2;
  cfg.num_flows = 0;
  net::Network net(cfg);
  detect::CompetingTerminalEstimator est;
  net.radio(1).add_listener(&est);

  net.add_flow(0, 1, 200);
  net.start_traffic(0, seconds_to_time(10));
  net.run_until(seconds_to_time(10));

  EXPECT_GT(est.successes(), 500u);
  EXPECT_LT(est.collision_probability(), 0.05);
  EXPECT_LE(est.competitors(), 2u);
}

TEST(CompetingTerminals, ContendedGridEstimatesMoreCompetitors) {
  net::ScenarioConfig cfg;  // full Table-1 grid
  cfg.num_flows = 30;
  cfg.packets_per_second = 14;  // ~load 0.6
  cfg.seed = 5;
  net::Network net(cfg);
  detect::CompetingTerminalEstimator est;
  est = detect::CompetingTerminalEstimator();  // default-constructible too
  net.radio(net.center_node()).add_listener(&est);

  net.build_random_flows();
  net.start_traffic(0, seconds_to_time(30));
  net.run_until(seconds_to_time(30));

  EXPECT_GT(est.failures(), 20u);
  EXPECT_GT(est.collision_probability(), 0.02);
  EXPECT_GE(est.competitors(), 2u);
}

TEST(FlowStats, TracksDeliveryRatioAndDelayOneHop) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = 2;
  cfg.num_flows = 0;
  net::Network net(cfg);

  net::EndToEndStats stats(net.simulator());
  auto sink = stats.wrap(net.sink(0));
  net.mac(1).set_listener(&stats);

  // Submit 100 packets at a sustainable rate via the recording sink.
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    sink.submit(1, 512, id);
    if (++id <= 100) net.simulator().after(10 * kMillisecond, feeder);
  };
  net.simulator().at(0, feeder);
  net.run_until(seconds_to_time(3));

  EXPECT_EQ(stats.submitted(), 100u);
  EXPECT_EQ(stats.delivered(), 100u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
  // One-hop exchange latency: at least the exchange airtime (~3.5 ms),
  // well under a second at this rate.
  EXPECT_GT(stats.delay().mean(), 0.003);
  EXPECT_LT(stats.delay().max(), 0.5);
}

TEST(FlowStats, MultiHopDeliveryViaAodvListener) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = 3;
  cfg.num_flows = 0;
  cfg.routing = net::RoutingKind::kAodv;
  net::Network net(cfg);

  net::EndToEndStats stats(net.simulator());
  auto sink = stats.wrap(net.sink(0));
  net.router(2)->set_listener(&stats);

  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    sink.submit(2, 512, id);
    if (++id <= 50) net.simulator().after(20 * kMillisecond, feeder);
  };
  net.simulator().at(0, feeder);
  net.run_until(seconds_to_time(3));

  EXPECT_GT(stats.delivered(), 45u);
  EXPECT_GT(stats.delivery_ratio(), 0.9);
  // Two hops cost roughly twice the one-hop latency.
  EXPECT_GT(stats.delay().mean(), 0.006);
}

TEST(FrameTracer, RecordsReadableLines) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 1;
  cfg.grid_cols = 2;
  cfg.num_flows = 0;
  net::Network net(cfg);

  net::FrameTracer tracer(1);
  net.mac(1).add_observer(&tracer);
  net.mac(0).enqueue(1, 512, 42);
  net.run_until(seconds_to_time(1));

  // RTS, CTS, DATA, ACK.
  ASSERT_EQ(tracer.total_frames(), 4u);
  const std::string text = tracer.render();
  EXPECT_NE(text.find("RTS"), std::string::npos);
  EXPECT_NE(text.find("CTS"), std::string::npos);
  EXPECT_NE(text.find("DATA"), std::string::npos);
  EXPECT_NE(text.find("ACK"), std::string::npos);
  EXPECT_NE(text.find("0->1"), std::string::npos);
  EXPECT_NE(text.find("1->0"), std::string::npos);
  EXPECT_NE(text.find("len=512B"), std::string::npos);
}

TEST(FrameTracer, BoundsRetainedLines) {
  net::FrameTracer tracer(0, /*max_lines=*/10);
  mac::DcfParams params;
  const mac::Frame data = mac::make_data(0, 1, 512, 1, params);
  for (int i = 0; i < 100; ++i) tracer.on_frame(data, i * 1000, i * 1000 + 10);
  EXPECT_EQ(tracer.total_frames(), 100u);
  EXPECT_EQ(tracer.lines().size(), 10u);
}

}  // namespace
}  // namespace manet
