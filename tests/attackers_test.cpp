// Adversary zoo v2 (src/mac/attackers.*) unit tests plus the experiment
// harness guarantees the ROC scoring relies on: every attacker is
// deterministic given the scenario seed, bit-identical between the shared
// ObservationHub and the private-hub reference pipeline, and the
// first-flag counters / RTS-gap bound behave as documented.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "detect/experiment.hpp"
#include "mac/attackers.hpp"
#include "mac/backoff.hpp"
#include "mac/frame.hpp"
#include "mac/params.hpp"

namespace manet::mac {
namespace {

TEST(CollusionSchedule, RotatesRoundRobinByPhase) {
  CollusionSchedule schedule;
  schedule.group_size = 3;
  schedule.phase = 2 * kSecond;
  EXPECT_EQ(schedule.cheater_at(0), 0u);
  EXPECT_EQ(schedule.cheater_at(2 * kSecond - 1), 0u);
  EXPECT_EQ(schedule.cheater_at(2 * kSecond), 1u);
  EXPECT_EQ(schedule.cheater_at(4 * kSecond), 2u);
  EXPECT_EQ(schedule.cheater_at(6 * kSecond), 0u);  // wraps
  EXPECT_EQ(schedule.cheater_at(-5), 0u);           // clamped, no UB

  schedule.group_size = 1;
  EXPECT_EQ(schedule.cheater_at(17 * kSecond), 0u);
}

TEST(ColludingBackoff, CheatsOnlyDuringOwnTurn) {
  auto schedule = std::make_shared<CollusionSchedule>();
  schedule->group_size = 2;
  schedule->phase = 2 * kSecond;
  ColludingBackoff member0(schedule, 0, /*percent=*/100);
  ColludingBackoff member1(schedule, 1, /*percent=*/100);

  BackoffContext ctx;
  ctx.dictated_slots = 20;
  ctx.now = kSecond;  // member 0's turn
  EXPECT_TRUE(member0.aggressive_at(ctx.now));
  EXPECT_EQ(member0.used_slots(ctx), 0u);
  EXPECT_FALSE(member1.aggressive_at(ctx.now));
  EXPECT_EQ(member1.used_slots(ctx), 20u);

  ctx.now = 3 * kSecond;  // member 1's turn
  EXPECT_EQ(member0.used_slots(ctx), 20u);
  EXPECT_EQ(member1.used_slots(ctx), 0u);
}

TEST(AdaptiveBackoff, HonestDuringProbationThenCheats) {
  AdaptiveBackoff policy(/*percent=*/100,
                         /*probation_until=*/seconds_to_time(10),
                         /*vigilance=*/0);
  BackoffContext ctx;
  ctx.dictated_slots = 16;
  ctx.now = seconds_to_time(5);
  EXPECT_TRUE(policy.lying_low(ctx.now));
  EXPECT_EQ(policy.used_slots(ctx), 16u);

  ctx.now = seconds_to_time(15);
  EXPECT_FALSE(policy.lying_low(ctx.now));
  EXPECT_EQ(policy.used_slots(ctx), 0u);
}

TEST(AdaptiveBackoff, VigilanceRestartsOnSuspectFrames) {
  const NodeId suspect = 7;
  AdaptiveBackoff policy(/*percent=*/100, /*probation_until=*/0,
                         /*vigilance=*/seconds_to_time(5), {suspect});
  BackoffContext ctx;
  ctx.dictated_slots = 16;
  ctx.now = seconds_to_time(1);
  EXPECT_EQ(policy.used_slots(ctx), 0u);  // probation over, nothing heard

  Frame heard;
  heard.transmitter = suspect;
  policy.on_frame(heard, seconds_to_time(2), seconds_to_time(2));
  ctx.now = seconds_to_time(4);
  EXPECT_TRUE(policy.lying_low(ctx.now));
  EXPECT_EQ(policy.used_slots(ctx), 16u);  // within vigilance
  ctx.now = seconds_to_time(8);
  EXPECT_EQ(policy.used_slots(ctx), 0u);   // vigilance expired

  Frame stranger;
  stranger.transmitter = 9;  // not a suspect: must not restart vigilance
  policy.on_frame(stranger, seconds_to_time(9), seconds_to_time(9));
  ctx.now = seconds_to_time(10);
  EXPECT_EQ(policy.used_slots(ctx), 0u);
}

TEST(SybilState, RotatesIdentityPerPacketKeepsPerIdentitySeqContinuous) {
  const DcfParams params;
  const std::vector<NodeId> aliases = {kSybilAliasBase, kSybilAliasBase + 1,
                                       kSybilAliasBase + 2};
  SybilState state(aliases, params);

  // Packet 1: the first packet stays on identity 0; retries stay with it
  // and keep consuming its sequence stream.
  state.begin_attempt(1);
  EXPECT_EQ(state.current_identity(), aliases[0]);
  EXPECT_EQ(state.current_seq(), 0u);
  state.begin_attempt(1);  // idempotent until consumed
  EXPECT_EQ(state.current_seq(), 0u);
  state.consume();
  state.begin_attempt(2);  // retry: same identity, next offset
  EXPECT_EQ(state.current_identity(), aliases[0]);
  EXPECT_EQ(state.current_seq(), 1u);
  state.consume();

  // Packets 2 and 3 rotate; packet 4 wraps back to identity 0 and resumes
  // its stream at offset 2.
  state.begin_attempt(1);
  EXPECT_EQ(state.current_identity(), aliases[1]);
  EXPECT_EQ(state.current_seq(), 0u);
  state.consume();
  state.begin_attempt(1);
  EXPECT_EQ(state.current_identity(), aliases[2]);
  state.consume();
  state.begin_attempt(1);
  EXPECT_EQ(state.current_identity(), aliases[0]);
  EXPECT_EQ(state.current_seq(), 2u);
  state.consume();
}

TEST(SybilState, DictatedMatchesTheClaimedIdentitysPublicPrs) {
  const DcfParams params;
  const std::vector<NodeId> aliases = {kSybilAliasBase, kSybilAliasBase + 1};
  SybilState state(aliases, params);

  state.begin_attempt(1);
  const VerifiableBackoff prs0(aliases[0], params);
  EXPECT_EQ(state.dictated_slots(), prs0.dictated_slots(0, 1));
  state.consume();
  state.begin_attempt(2);
  EXPECT_EQ(state.dictated_slots(), prs0.dictated_slots(1, 2));
  state.consume();

  state.begin_attempt(1);
  const VerifiableBackoff prs1(aliases[1], params);
  EXPECT_EQ(state.dictated_slots(), prs1.dictated_slots(0, 1));
}

TEST(SybilState, RejectsEmptyIdentityList) {
  const DcfParams params;
  EXPECT_THROW(SybilState({}, params), std::invalid_argument);
}

TEST(PmScaledSlots, ScalesAndRounds) {
  EXPECT_EQ(pm_scaled_slots(20, 0), 20u);
  EXPECT_EQ(pm_scaled_slots(20, 100), 0u);
  EXPECT_EQ(pm_scaled_slots(20, 50), 10u);
  EXPECT_EQ(pm_scaled_slots(21, 50), 11u);  // 10.5 rounds up
  EXPECT_EQ(pm_scaled_slots(0, 50), 0u);
}

}  // namespace
}  // namespace manet::mac

namespace manet::detect {
namespace {

net::ScenarioConfig tiny_grid(double seconds, std::uint64_t seed) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 3;
  cfg.grid_cols = 4;
  cfg.num_flows = 5;
  cfg.sim_seconds = seconds;
  cfg.seed = seed;
  return cfg;
}

MonitorConfig small_monitor(std::size_t ss = 10) {
  MonitorConfig m;
  m.sample_size = ss;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
  m.fixed_contenders = 8.0;
  return m;
}

AttackerSpec spec_of(AttackerKind kind) {
  AttackerSpec spec;
  spec.kind = kind;
  spec.pm = 90;
  spec.group = 3;
  spec.collude_phase_s = 1.0;
  spec.probation_s = 2.0;
  // Dense enough that typical inter-RTS gaps cannot fit a dictated
  // back-off — the regime the gap bound is built for.
  spec.flood_pps = 2000.0;
  return spec;
}

MultiDetectionConfig zoo_config(AttackerKind kind, std::uint64_t seed) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(10.0, seed);
  cfg.rate_pps = 25;
  cfg.attacker = spec_of(kind);
  cfg.monitors = {small_monitor(10)};
  if (kind == AttackerKind::kRtsFlood) {
    cfg.monitors[0].rts_gap_bound = true;  // floods anchor no windows otherwise
  }
  cfg.collect_windows = true;
  return cfg;
}

const AttackerKind kZooKinds[] = {AttackerKind::kPm, AttackerKind::kColluding,
                                  AttackerKind::kAdaptive, AttackerKind::kSybil,
                                  AttackerKind::kRtsFlood};

void expect_identical(const MultiDetectionResult& a, const MultiDetectionResult& b,
                      AttackerKind kind) {
  const int k = static_cast<int>(kind);
  EXPECT_EQ(a.measured_rho, b.measured_rho) << "kind " << k;
  ASSERT_EQ(a.per_config.size(), b.per_config.size()) << "kind " << k;
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    const auto& x = a.per_config[i];
    const auto& y = b.per_config[i];
    EXPECT_EQ(x.windows, y.windows) << "kind " << k;
    EXPECT_EQ(x.flagged, y.flagged) << "kind " << k;
    EXPECT_EQ(x.flagged_statistical, y.flagged_statistical) << "kind " << k;
    EXPECT_EQ(x.stats, y.stats) << "kind " << k;
    ASSERT_EQ(x.window_log.size(), y.window_log.size()) << "kind " << k;
    for (std::size_t w = 0; w < x.window_log.size(); ++w) {
      EXPECT_EQ(x.window_log[w], y.window_log[w]) << "kind " << k << " window " << w;
    }
  }
}

TEST(AttackerExperiments, SameSeedSameTracePerAttacker) {
  for (AttackerKind kind : kZooKinds) {
    const auto cfg = zoo_config(kind, 11);
    expect_identical(run_multi_detection_experiment(cfg),
                     run_multi_detection_experiment(cfg), kind);
  }
}

TEST(AttackerExperiments, AllPipelinesMatchPerAttacker) {
  for (AttackerKind kind : kZooKinds) {
    auto cfg = zoo_config(kind, 23);
    cfg.pipeline = PipelineImpl::kReference;
    const auto ref = run_multi_detection_experiment(cfg);
    cfg.pipeline = PipelineImpl::kHub;
    expect_identical(run_multi_detection_experiment(cfg), ref, kind);
    cfg.pipeline = PipelineImpl::kBatch;
    expect_identical(run_multi_detection_experiment(cfg), ref, kind);
  }
}

TEST(AttackerExperiments, FirstFlagCountersTrackTheFirstFlaggedWindow) {
  auto cheat = zoo_config(AttackerKind::kPm, 31);
  cheat.scenario.sim_seconds = 15.0;
  const auto flagged = run_multi_detection_experiment(cheat);
  ASSERT_GT(flagged.per_config[0].flagged, 0u);
  EXPECT_NE(flagged.per_config[0].stats.first_flag_time, kTimeNever);
  EXPECT_GE(flagged.per_config[0].stats.windows_to_first_flag, 1u);
  EXPECT_LE(flagged.per_config[0].stats.windows_to_first_flag,
            flagged.per_config[0].windows);

  MultiDetectionConfig honest;
  honest.scenario = tiny_grid(8.0, 31);
  honest.rate_pps = 25;
  honest.monitors = {small_monitor(10)};
  honest.collect_windows = true;
  const auto clean = run_multi_detection_experiment(honest);
  EXPECT_EQ(clean.per_config[0].flagged, 0u);
  EXPECT_EQ(clean.per_config[0].stats.first_flag_time, kTimeNever);
  EXPECT_EQ(clean.per_config[0].stats.windows_to_first_flag, 0u);
}

TEST(AttackerExperiments, RtsFloodOnlyVisibleThroughTheGapBound) {
  auto cfg = zoo_config(AttackerKind::kRtsFlood, 41);
  cfg.monitors[0].rts_gap_bound = false;
  const auto blind = run_multi_detection_experiment(cfg);
  // A pure flood never completes an exchange of its own, so the paper's
  // pipeline only ever judges the handful of flood RTSes that happen to
  // land right after somebody else's exchange (the anchor); nearly every
  // observed RTS is skipped unjudged.
  EXPECT_GT(blind.per_config[0].stats.rts_observed, 0u);
  EXPECT_GT(blind.per_config[0].stats.skipped_no_anchor,
            10 * blind.per_config[0].windows);

  cfg.monitors[0].rts_gap_bound = true;
  const auto armed = run_multi_detection_experiment(cfg);
  EXPECT_GT(armed.per_config[0].windows, 10 * blind.per_config[0].windows);
  EXPECT_GT(armed.per_config[0].flagged, 0u);
  EXPECT_GT(armed.per_config[0].stats.impossible_backoff, 0u);
  // The flood is caught by single-shot gap-bound verdicts: first_flag_time
  // is valid but the window ordinal is reported as 0 / "absent" because a
  // gap-bound flag closes no sample window (see report.hpp).
  EXPECT_NE(armed.per_config[0].stats.first_flag_time, kTimeNever);
  EXPECT_EQ(armed.per_config[0].stats.windows_to_first_flag, 0u);
}

TEST(AttackerExperiments, MobileHandoffRejectsMultiIdentityAttackers) {
  for (AttackerKind kind :
       {AttackerKind::kColluding, AttackerKind::kSybil, AttackerKind::kRtsFlood}) {
    auto cfg = zoo_config(kind, 5);
    cfg.mobile_handoff = true;
    EXPECT_THROW(run_multi_detection_experiment(cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace manet::detect
