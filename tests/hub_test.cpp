// Equivalence and sharing tests for the per-node ObservationHub
// (src/detect/observation_hub.*) and the batched SoA pipeline
// (src/detect/monitor_batch.*). Both are pure refactors plus
// memoization: a monitor set running as batch lanes or as shared-hub
// views must produce WindowResult sequences and MonitorStats
// bit-identical to private per-monitor state
// (MultiDetectionConfig::pipeline = kReference, structurally the pre-hub
// pipeline), across static, mobile-handoff, lossy, all-pairs, and
// sybil multi-identity scenarios and across seeds.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/monitor.hpp"
#include "detect/monitor_batch.hpp"
#include "detect/observation_hub.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace manet::detect {
namespace {

net::ScenarioConfig tiny_grid(double seconds, std::uint64_t seed) {
  net::ScenarioConfig cfg;
  cfg.grid_rows = 3;
  cfg.grid_cols = 4;
  cfg.num_flows = 5;
  cfg.sim_seconds = seconds;
  cfg.seed = seed;
  return cfg;
}

MonitorConfig small_monitor(std::size_t ss = 10) {
  MonitorConfig m;
  m.sample_size = ss;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
  m.fixed_contenders = 8.0;
  return m;
}

MultiDetectionConfig base_config(double seconds, std::uint64_t seed) {
  MultiDetectionConfig cfg;
  cfg.scenario = tiny_grid(seconds, seed);
  cfg.rate_pps = 25;
  cfg.pm = 60;
  cfg.monitors = {small_monitor(10), small_monitor(25), small_monitor(10)};
  cfg.collect_windows = true;
  return cfg;
}

void expect_identical_results(const MultiDetectionResult& got,
                              const MultiDetectionResult& ref,
                              const char* impl) {
  EXPECT_EQ(got.measured_rho, ref.measured_rho) << impl;
  EXPECT_EQ(got.handoffs, ref.handoffs) << impl;
  EXPECT_EQ(got.monitor_nodes, ref.monitor_nodes) << impl;
  ASSERT_EQ(got.per_config.size(), ref.per_config.size()) << impl;
  for (std::size_t i = 0; i < got.per_config.size(); ++i) {
    const auto& g = got.per_config[i];
    const auto& r = ref.per_config[i];
    EXPECT_EQ(g.windows, r.windows) << impl << " config " << i;
    EXPECT_EQ(g.flagged, r.flagged) << impl << " config " << i;
    EXPECT_EQ(g.flagged_statistical, r.flagged_statistical)
        << impl << " config " << i;
    EXPECT_EQ(g.stats, r.stats) << impl << " config " << i;
    ASSERT_EQ(g.window_log.size(), r.window_log.size()) << impl << " config " << i;
    for (std::size_t w = 0; w < g.window_log.size(); ++w) {
      EXPECT_EQ(g.window_log[w], r.window_log[w])
          << impl << " config " << i << " window " << w;
    }
  }
}

/// Runs `cfg` under all three pipelines (batch lanes, per-monitor hub
/// views, private per-monitor hubs) and asserts every deterministic
/// output matches the reference exactly.
void expect_hub_matches_reference(MultiDetectionConfig cfg) {
  cfg.collect_windows = true;
  cfg.pipeline = PipelineImpl::kReference;
  const auto ref = run_multi_detection_experiment(cfg);
  cfg.pipeline = PipelineImpl::kHub;
  expect_identical_results(run_multi_detection_experiment(cfg), ref, "hub");
  cfg.pipeline = PipelineImpl::kBatch;
  expect_identical_results(run_multi_detection_experiment(cfg), ref, "batch");
}

TEST(HubEquivalence, StaticGridBitIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {7u, 41u, 1234u}) {
    SCOPED_TRACE(seed);
    expect_hub_matches_reference(base_config(30, seed));
  }
}

TEST(HubEquivalence, MobileHandoffBitIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {11u, 97u}) {
    SCOPED_TRACE(seed);
    MultiDetectionConfig cfg = base_config(40, seed);
    cfg.scenario.mobility = net::MobilityKind::kRandomWaypoint;
    cfg.scenario.max_speed_mps = 20.0;
    cfg.scenario.pause_s = 0.0;
    cfg.mobile_handoff = true;
    expect_hub_matches_reference(cfg);
  }
}

TEST(HubEquivalence, LossyScenarioBitIdentical) {
  // Decode failures + corruption + an outage: the hub's ring and the
  // monitors' resync logic must see the impaired stream identically.
  MultiDetectionConfig cfg = base_config(30, 77);
  cfg.scenario.faults.loss_probability = 0.10;
  cfg.scenario.faults.corrupt_probability = 0.03;
  cfg.scenario.faults.outages.push_back(
      {.node = 1, .start = 5 * kSecond, .stop = 7 * kSecond});
  expect_hub_matches_reference(cfg);
}

TEST(HubEquivalence, AllPairsBitIdenticalAndCountsNodes) {
  MultiDetectionConfig cfg = base_config(30, 19);
  cfg.all_pairs = true;
  expect_hub_matches_reference(cfg);

  cfg.pipeline = PipelineImpl::kBatch;
  const auto result = run_multi_detection_experiment(cfg);
  // The 3x4 grid center has in-range orthogonal neighbors on all sides.
  EXPECT_GE(result.monitor_nodes, 3u);
  EXPECT_GT(result.per_config[0].windows, 0u);
}

TEST(HubEquivalence, SybilMultiIdentityBitIdentical) {
  // Sybil attackers spread violations across fake identities, so the
  // harness monitors several targets per node — under kBatch each target
  // is its own config-group; the fan-out bookkeeping must not leak
  // between identities.
  MultiDetectionConfig cfg = base_config(30, 29);
  cfg.pm = 0;
  cfg.attacker.kind = AttackerKind::kSybil;
  cfg.attacker.pm = 60.0;
  expect_hub_matches_reference(cfg);
}

TEST(HubEquivalence, SequentialDetectorsBitIdentical) {
  // CUSUM/SPRT lanes run through the batched SequentialBank; their Step
  // streams must match the per-monitor CusumTest/SprtTest bit for bit.
  MultiDetectionConfig cfg = base_config(30, 53);
  MonitorConfig cusum = small_monitor(10);
  cusum.detector = DetectorKind::kCusum;
  MonitorConfig sprt = small_monitor(10);
  sprt.detector = DetectorKind::kSprt;
  cfg.monitors = {small_monitor(10), cusum, sprt};
  expect_hub_matches_reference(cfg);
}

TEST(Hub, AllPairsRejectsMobileHandoff) {
  MultiDetectionConfig cfg = base_config(10, 3);
  cfg.all_pairs = true;
  cfg.mobile_handoff = true;
  EXPECT_THROW(run_multi_detection_experiment(cfg), std::invalid_argument);
}

// --- Component sharing on a bare hub ----------------------------------------

struct FixedPositions : phy::PositionProvider {
  explicit FixedPositions(std::vector<geom::Vec2> p) : pos(std::move(p)) {}
  std::vector<geom::Vec2> pos;
  geom::Vec2 position(NodeId node, SimTime) const override { return pos.at(node); }
};

struct HubFixture {
  HubFixture()
      : prop(phy::PropagationParams{}, 3),
        positions({{0, 0}, {200, 0}}),
        channel(sim, prop, positions),
        radio(1, channel),
        mac(sim, radio, params),
        timeline(),
        hub(sim, mac, timeline) {
    radio.add_listener(&timeline);
  }

  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop;
  FixedPositions positions;
  phy::Channel channel;
  phy::Radio radio;
  mac::DcfMac mac;
  phy::CsTimeline timeline;
  ObservationHub hub;
};

TEST(Hub, ViewsWithEqualKnobsShareComponents) {
  HubFixture f;
  MonitorConfig cfg = small_monitor();
  Monitor a(f.hub, 0, cfg);
  Monitor b(f.hub, 0, cfg);
  EXPECT_EQ(f.hub.view_count(), 2u);
  EXPECT_EQ(f.hub.ring_count(), 1u);
  EXPECT_EQ(f.hub.tracker_count(), 1u);
  EXPECT_EQ(f.hub.density_count(), 1u);
}

TEST(Hub, DifferentKnobsGetPrivateComponents) {
  HubFixture f;
  Monitor a(f.hub, 0, small_monitor());

  MonitorConfig ring_cfg = small_monitor();
  ring_cfg.decoded_retention = 2 * kSecond;
  Monitor b(f.hub, 0, ring_cfg);

  MonitorConfig arma_cfg = small_monitor();
  arma_cfg.arma_alpha = 0.5;
  Monitor c(f.hub, 0, arma_cfg);

  MonitorConfig density_cfg = small_monitor();
  density_cfg.density_window = 10 * kSecond;
  Monitor d(f.hub, 0, density_cfg);

  EXPECT_EQ(f.hub.view_count(), 4u);
  EXPECT_EQ(f.hub.ring_count(), 2u);     // a+c+d share; b private
  EXPECT_EQ(f.hub.tracker_count(), 2u);  // a+b+d share; c private
  EXPECT_EQ(f.hub.density_count(), 2u);  // a+b+c share; d private
}

TEST(Hub, LaterAttachTimeGetsFreshComponents) {
  // A view attached mid-run must not inherit another view's accumulated
  // ring/ARMA/density history (pre-refactor monitors started empty).
  HubFixture f;
  MonitorConfig cfg = small_monitor();
  auto a = std::make_unique<Monitor>(f.hub, 0, cfg);
  f.sim.run_until(1 * kSecond);
  Monitor b(f.hub, 0, cfg);
  EXPECT_EQ(f.hub.ring_count(), 2u);
  EXPECT_EQ(f.hub.tracker_count(), 2u);
  EXPECT_EQ(f.hub.density_count(), 2u);
}

TEST(Hub, DetachReleasesViews) {
  HubFixture f;
  {
    Monitor a(f.hub, 0, small_monitor());
    EXPECT_EQ(f.hub.view_count(), 1u);
  }
  EXPECT_EQ(f.hub.view_count(), 0u);
}

TEST(Hub, FactoryStandaloneMatchesLegacyLayout) {
  HubFixture f;
  const auto m = MonitorFactory(f.sim, f.mac, f.timeline).watch(0, small_monitor());
  EXPECT_EQ(m->hub().view_count(), 1u);
  EXPECT_NE(&m->hub(), &f.hub);
  EXPECT_EQ(m->self(), 1u);  // the fixture's MAC is node 1
}

TEST(Hub, FactorySharedModeStampsViews) {
  HubFixture f;
  MonitorFactory factory(f.hub);
  factory.with_config(small_monitor());
  const auto a = factory.watch(0);
  MonitorConfig other = small_monitor();
  other.sample_size = 25;
  const auto b = factory.watch(0, other);
  EXPECT_EQ(f.hub.view_count(), 2u);
  EXPECT_EQ(f.hub.ring_count(), 1u);  // knobs equal -> shared ring
}

// --- Batch config-grouping --------------------------------------------------

TEST(MonitorBatch, LanesDifferingOnlyInTestKnobsShareAGroup) {
  // sample_size / alpha / margin / detector / record_samples are per-lane
  // SoA fields; lanes agreeing on everything else collapse into one group
  // (= one hub view, one shared evaluation pass per frame).
  HubFixture f;
  MonitorBatch batch(f.hub);
  MonitorFactory factory(batch);
  const auto a = factory.watch(0, small_monitor(10));
  MonitorConfig b_cfg = small_monitor(25);
  b_cfg.alpha = 0.01;
  b_cfg.margin_fraction = 0.2;
  b_cfg.record_samples = true;
  const auto b = factory.watch(0, b_cfg);
  MonitorConfig c_cfg = small_monitor(10);
  c_cfg.detector = DetectorKind::kCusum;
  const auto c = factory.watch(0, c_cfg);

  EXPECT_EQ(batch.lane_count(), 3u);
  EXPECT_EQ(batch.group_count(), 1u);
  EXPECT_EQ(f.hub.view_count(), 1u);  // the group is the only hub view
  EXPECT_EQ(f.hub.ring_count(), 1u);
}

TEST(MonitorBatch, SharedFieldOrTargetDifferencesSplitGroups) {
  HubFixture f;
  MonitorBatch batch(f.hub);
  MonitorFactory factory(batch);
  const auto a = factory.watch(0, small_monitor(10));
  MonitorConfig estimator_cfg = small_monitor(10);
  estimator_cfg.busy_credit_factor = 0.5;
  const auto b = factory.watch(0, estimator_cfg);  // estimator knob: new group
  const auto c = factory.watch(5, small_monitor(10));  // other target: new group

  EXPECT_EQ(batch.lane_count(), 3u);
  EXPECT_EQ(batch.group_count(), 3u);
  EXPECT_EQ(f.hub.view_count(), 3u);
  // The hub still shares components across groups under its own keying:
  // all three agree on ring/ARMA/density knobs and attach time.
  EXPECT_EQ(f.hub.ring_count(), 1u);
}

TEST(MonitorBatch, LaterCreationTimeGetsFreshGroup) {
  // Mirrors Hub.LaterAttachTimeGetsFreshComponents: a lane added mid-run
  // must not inherit another group's exchange state or components.
  HubFixture f;
  MonitorBatch batch(f.hub);
  MonitorFactory factory(batch);
  const auto a = factory.watch(0, small_monitor(10));
  f.sim.run_until(1 * kSecond);
  const auto b = factory.watch(0, small_monitor(10));
  EXPECT_EQ(batch.group_count(), 2u);
  EXPECT_EQ(f.hub.ring_count(), 2u);
}

TEST(MonitorBatch, FacadeAccessorsReadLaneState) {
  HubFixture f;
  MonitorBatch batch(f.hub);
  MonitorFactory factory(batch);
  const auto m = factory.watch(0, small_monitor(10));
  EXPECT_EQ(&m->hub(), &f.hub);
  EXPECT_EQ(m->stats().rts_observed, 0u);
  EXPECT_TRUE(m->windows().empty());
  EXPECT_TRUE(m->sample_log().empty());
  m->set_active(false);
  EXPECT_FALSE(batch.lane_active(0));
  m->set_active(true);
  EXPECT_TRUE(batch.lane_active(0));
}

}  // namespace
}  // namespace manet::detect
