#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "mac/frame.hpp"
#include "mac/params.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"

namespace manet::mac {
namespace {

TEST(DcfParams, ContentionWindowDoublesAndSaturates) {
  DcfParams p;
  EXPECT_EQ(p.cw_for_attempt(1), 31u);
  EXPECT_EQ(p.cw_for_attempt(2), 63u);
  EXPECT_EQ(p.cw_for_attempt(3), 127u);
  EXPECT_EQ(p.cw_for_attempt(4), 255u);
  EXPECT_EQ(p.cw_for_attempt(5), 511u);
  EXPECT_EQ(p.cw_for_attempt(6), 1023u);
  EXPECT_EQ(p.cw_for_attempt(7), 1023u);   // saturated at CWmax
  EXPECT_EQ(p.cw_for_attempt(20), 1023u);
}

TEST(DcfParams, AirtimesIncludePlcpOverhead) {
  DcfParams p;
  // RTS: 38 bytes at 1 Mb/s = 304 us + 192 us preamble.
  EXPECT_EQ(p.rts_airtime(), (192 + 304) * kMicrosecond);
  EXPECT_EQ(p.cts_airtime(), (192 + 112) * kMicrosecond);
  EXPECT_EQ(p.ack_airtime(), (192 + 112) * kMicrosecond);
  // DATA: (512+28) bytes at 2 Mb/s = 2160 us + 192 us preamble.
  EXPECT_EQ(p.data_airtime(512), (192 + 2160) * kMicrosecond);
  EXPECT_EQ(p.eifs(), p.sifs + p.ack_airtime() + p.difs);
  EXPECT_GT(p.response_timeout(p.cts_airtime()), p.sifs + p.cts_airtime());
}

TEST(Frame, NavChainingFollowsTheStandard) {
  DcfParams p;
  const Frame data = make_data(1, 2, 512, 77, p);
  const Frame rts = make_rts(1, 2, data, 5, 1, p);
  const Frame cts = make_cts(2, rts, p);
  const Frame ack = make_ack(2, data);

  // RTS reserves through CTS + DATA + ACK + 3 SIFS.
  EXPECT_EQ(rts.duration, 3 * p.sifs + p.cts_airtime() + p.data_airtime(512) +
                              p.ack_airtime());
  // Each response shrinks the reservation by one SIFS + its own airtime.
  EXPECT_EQ(cts.duration, rts.duration - p.sifs - p.cts_airtime());
  EXPECT_EQ(data.duration, p.sifs + p.ack_airtime());
  EXPECT_EQ(ack.duration, 0);
  EXPECT_EQ(rts.receiver, 2u);
  EXPECT_EQ(cts.receiver, 1u);
  EXPECT_EQ(rts.seq_off, 5u);
  EXPECT_EQ(rts.attempt, 1);
}

TEST(Frame, PayloadDigestIdentifiesContents) {
  const auto d1 = payload_digest(1, 100, 512);
  EXPECT_EQ(payload_digest(1, 100, 512), d1);   // deterministic
  EXPECT_NE(payload_digest(1, 101, 512), d1);   // different payload
  EXPECT_NE(payload_digest(2, 100, 512), d1);   // different source
  EXPECT_NE(payload_digest(1, 100, 256), d1);   // different size
}

TEST(VerifiableBackoff, DictatedValuesAreBoundedByAttemptWindow) {
  DcfParams p;
  VerifiableBackoff prs(42, p);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_LE(prs.dictated_slots(i, 1), 31u);
    EXPECT_LE(prs.dictated_slots(i, 3), 127u);
    EXPECT_LE(prs.dictated_slots(i, 9), 1023u);
  }
}

TEST(VerifiableBackoff, MonitorReproducesSenderSequence) {
  DcfParams p;
  VerifiableBackoff sender(7, p);
  VerifiableBackoff monitor_copy(7, p);  // monitor knows S's MAC address
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(monitor_copy.dictated_slots(i, 1), sender.dictated_slots(i, 1));
  }
  VerifiableBackoff other(8, p);
  int same = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    same += other.dictated_slots(i, 1) == sender.dictated_slots(i, 1);
  }
  EXPECT_LT(same, 30);  // different seeds, different sequences
}

TEST(VerifiableBackoff, SequenceOffsetWrapsAt13Bits) {
  DcfParams p;
  VerifiableBackoff prs(9, p);
  EXPECT_EQ(prs.dictated_slots(0, 1), prs.dictated_slots(8192, 1));
  EXPECT_EQ(prs.dictated_slots(123, 2), prs.dictated_slots(8192 + 123, 2));
}

TEST(BackoffPolicies, PercentMisbehaviorScalesDictatedValue) {
  BackoffContext ctx;
  ctx.dictated_slots = 20;

  PercentMisbehavior honest_like(0);
  EXPECT_EQ(honest_like.used_slots(ctx), 20u);
  PercentMisbehavior half(50);
  EXPECT_EQ(half.used_slots(ctx), 10u);
  PercentMisbehavior total(100);
  EXPECT_EQ(total.used_slots(ctx), 0u);
  PercentMisbehavior pm65(65);
  EXPECT_EQ(pm65.used_slots(ctx), 7u);  // 20 * 0.35 = 7

  HonestBackoff honest;
  EXPECT_EQ(honest.used_slots(ctx), 20u);
}

TEST(BackoffPolicies, ConstantAndNoExponential) {
  BackoffContext ctx;
  ctx.dictated_slots = 500;
  ctx.raw_prs_value = 0xDEADBEEF;
  ctx.attempt = 4;

  ConstantBackoff constant(3);
  EXPECT_EQ(constant.used_slots(ctx), 3u);

  NoExponentialBackoff no_exp(31);
  EXPECT_LE(no_exp.used_slots(ctx), 31u);
  EXPECT_EQ(no_exp.used_slots(ctx), 0xDEADBEEF % 32);
}

TEST(AnnouncePolicies, HonestAndCheatingFields) {
  AnnounceContext ctx{17, 3};
  HonestAnnounce honest;
  EXPECT_EQ(honest.announced(ctx).seq_off, 17u);
  EXPECT_EQ(honest.announced(ctx).attempt, 3u);

  StuckAttemptAnnounce stuck;
  EXPECT_EQ(stuck.announced(ctx).attempt, 1u);
  EXPECT_EQ(stuck.announced(ctx).seq_off, 17u);

  FrozenSeqOffAnnounce frozen(4);
  EXPECT_EQ(frozen.announced(ctx).seq_off, 4u);
}

// ---------------------------------------------------------------------------
// DCF end-to-end on a bare PHY.

struct FixedPositions : phy::PositionProvider {
  explicit FixedPositions(std::vector<geom::Vec2> p) : pos(std::move(p)) {}
  std::vector<geom::Vec2> pos;
  geom::Vec2 position(NodeId node, SimTime) const override { return pos.at(node); }
};

struct CountingListener : MacListener {
  int delivered = 0, sent = 0, dropped = 0;
  DropReason last_reason = DropReason::kQueueFull;
  void on_delivered(const Frame&, SimTime) override { ++delivered; }
  void on_sent(const Frame&, SimTime) override { ++sent; }
  void on_dropped(const Frame&, DropReason r) override {
    ++dropped;
    last_reason = r;
  }
};

struct FrameLog : MacObserver {
  struct Entry {
    Frame frame;
    SimTime start, end;
  };
  std::vector<Entry> entries;
  void on_frame(const Frame& f, SimTime s, SimTime e) override {
    entries.push_back({f, s, e});
  }
};

struct MacFixture {
  explicit MacFixture(std::vector<geom::Vec2> layout)
      : prop(phy::PropagationParams{}, 3), positions(std::move(layout)),
        channel(sim, prop, positions) {
    for (NodeId i = 0; i < positions.pos.size(); ++i) {
      radios.push_back(std::make_unique<phy::Radio>(i, channel));
      macs.push_back(std::make_unique<DcfMac>(sim, *radios.back(), params));
      listeners.push_back(std::make_unique<CountingListener>());
      macs.back()->set_listener(listeners.back().get());
    }
  }

  sim::Simulator sim;
  DcfParams params;
  phy::Propagation prop;
  FixedPositions positions;
  phy::Channel channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<DcfMac>> macs;
  std::vector<std::unique_ptr<CountingListener>> listeners;
};

TEST(Dcf, SinglePacketFourWayHandshake) {
  MacFixture f({{0, 0}, {200, 0}});
  FrameLog log;
  f.macs[1]->add_observer(&log);

  EXPECT_TRUE(f.macs[0]->enqueue(1, 512, 1001));
  f.sim.run_until(1 * kSecond);

  EXPECT_EQ(f.listeners[1]->delivered, 1);
  EXPECT_EQ(f.listeners[0]->sent, 1);
  EXPECT_EQ(f.macs[0]->stats().rts_sent, 1u);
  EXPECT_EQ(f.macs[0]->stats().data_sent, 1u);
  EXPECT_EQ(f.macs[0]->stats().packets_acked, 1u);
  EXPECT_EQ(f.macs[1]->stats().cts_sent, 1u);
  EXPECT_EQ(f.macs[1]->stats().ack_sent, 1u);
  EXPECT_EQ(f.macs[1]->stats().packets_delivered, 1u);

  // Observer at node 1 saw RTS, DATA from node 0 and its own CTS, ACK.
  ASSERT_EQ(log.entries.size(), 4u);
  EXPECT_EQ(log.entries[0].frame.type, FrameType::kRts);
  EXPECT_EQ(log.entries[1].frame.type, FrameType::kCts);
  EXPECT_EQ(log.entries[2].frame.type, FrameType::kData);
  EXPECT_EQ(log.entries[3].frame.type, FrameType::kAck);
  // SIFS gaps between the exchange frames.
  EXPECT_EQ(log.entries[1].start, log.entries[0].end + f.params.sifs);
  EXPECT_EQ(log.entries[2].start, log.entries[1].end + f.params.sifs);
  EXPECT_EQ(log.entries[3].start, log.entries[2].end + f.params.sifs);
}

TEST(Dcf, FirstTransmissionWaitsDifsPlusDictatedBackoff) {
  MacFixture f({{0, 0}, {200, 0}});
  FrameLog log;
  f.macs[1]->add_observer(&log);

  const SimTime enqueue_at = 10 * kMillisecond;
  f.sim.at(enqueue_at, [&] { f.macs[0]->enqueue(1, 512, 1); });
  f.sim.run_until(1 * kSecond);

  ASSERT_FALSE(log.entries.empty());
  const auto& rts = log.entries[0];
  ASSERT_EQ(rts.frame.type, FrameType::kRts);
  const std::uint32_t dictated = f.macs[0]->prs().dictated_slots(rts.frame.seq_off, 1);
  EXPECT_EQ(rts.start,
            enqueue_at + f.params.difs + dictated * f.params.slot_time);
  EXPECT_EQ(rts.frame.seq_off, 0u);
  EXPECT_EQ(rts.frame.attempt, 1);
  EXPECT_EQ(rts.frame.data_digest, payload_digest(0, 1, 512));
}

TEST(Dcf, HonestNodeConsumesSequentialSeqOffsets) {
  MacFixture f({{0, 0}, {200, 0}});
  FrameLog log;
  f.macs[1]->add_observer(&log);

  for (int i = 0; i < 5; ++i) f.macs[0]->enqueue(1, 512, 100 + i);
  f.sim.run_until(2 * kSecond);

  std::vector<std::uint32_t> offsets;
  for (const auto& e : log.entries) {
    if (e.frame.type == FrameType::kRts) offsets.push_back(e.frame.seq_off);
  }
  ASSERT_EQ(offsets.size(), 5u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i);
  }
  EXPECT_EQ(f.listeners[1]->delivered, 5);
}

TEST(Dcf, CtsTimeoutTriggersRetriesWithGrowingWindowThenDrop) {
  // Destination 600 m away: RTS inaudible, CTS never comes.
  MacFixture f({{0, 0}, {600, 0}});
  FrameLog log;
  f.macs[1]->add_observer(&log);

  f.macs[0]->enqueue(1, 512, 1);
  f.sim.run_until(5 * kSecond);

  EXPECT_EQ(f.macs[0]->stats().rts_sent, f.params.retry_limit);
  EXPECT_EQ(f.macs[0]->stats().retries, f.params.retry_limit - 1);
  EXPECT_EQ(f.macs[0]->stats().retry_drops, 1u);
  EXPECT_EQ(f.listeners[0]->dropped, 1);
  EXPECT_EQ(f.listeners[0]->last_reason, DropReason::kRetryLimit);
  EXPECT_FALSE(f.macs[0]->busy_with_packet());
}

TEST(Dcf, AttemptNumberIncrementsOnRetries) {
  // Three nodes in a line; node 2 jams node 1 sporadically? Simpler: use an
  // out-of-range destination and a third in-range observer that logs the
  // retry RTSes.
  MacFixture f({{0, 0}, {600, 0}, {200, 0}});
  FrameLog log;
  f.macs[2]->add_observer(&log);

  f.macs[0]->enqueue(1, 512, 1);
  f.sim.run_until(5 * kSecond);

  std::vector<int> attempts;
  std::vector<std::uint32_t> offsets;
  for (const auto& e : log.entries) {
    if (e.frame.type == FrameType::kRts && e.frame.transmitter == 0) {
      attempts.push_back(e.frame.attempt);
      offsets.push_back(e.frame.seq_off);
    }
  }
  ASSERT_EQ(attempts.size(), f.params.retry_limit);
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    EXPECT_EQ(attempts[i], static_cast<int>(i + 1));
    EXPECT_EQ(offsets[i], i);  // every retry consumes a fresh offset
  }
}

TEST(Dcf, QueueCapacityEnforced) {
  MacFixture f({{0, 0}, {200, 0}});
  int accepted = 0;
  for (int i = 0; i < 60; ++i) accepted += f.macs[0]->enqueue(1, 512, i);
  // One packet goes into service immediately; 50 wait in the queue.
  EXPECT_EQ(accepted, 51);
  EXPECT_EQ(f.macs[0]->stats().queue_drops, 9u);
  EXPECT_EQ(f.macs[0]->queue_length(), 50u);
}

TEST(Dcf, NavDefersThirdPartyDuringExchange) {
  // Nodes 0 and 1 exchange; node 2 is within range of both and must defer.
  MacFixture f({{0, 0}, {200, 0}, {100, 170}});
  FrameLog log;
  f.macs[1]->add_observer(&log);

  f.macs[0]->enqueue(1, 512, 1);
  // Node 2 gets a packet for node 0 while the exchange is on the air.
  f.sim.at(1 * kMillisecond, [&] { f.macs[2]->enqueue(0, 512, 2); });
  f.sim.run_until(2 * kSecond);

  EXPECT_EQ(f.listeners[1]->delivered, 1);
  EXPECT_EQ(f.listeners[0]->delivered, 1);
  // No retries should have been needed: NAV prevented any collision.
  EXPECT_EQ(f.macs[0]->stats().retries, 0u);
  EXPECT_EQ(f.macs[2]->stats().retries, 0u);

  // Node 2's RTS starts only after node 0's exchange completed.
  SimTime exchange_end = 0;
  SimTime node2_rts = 0;
  for (const auto& e : log.entries) {
    if (e.frame.type == FrameType::kAck && e.frame.receiver == 0) {
      exchange_end = e.end;
    }
  }
  MacFixture* fp = &f;  // silence unused warning paths
  (void)fp;
  // Find node 2's RTS in node 1's log (node 1 hears it at ~196 m... node 2
  // is at (100,170): 197 m from both 0 and 1 — decodable).
  for (const auto& e : log.entries) {
    if (e.frame.type == FrameType::kRts && e.frame.transmitter == 2) {
      node2_rts = e.start;
    }
  }
  ASSERT_GT(exchange_end, 0);
  ASSERT_GT(node2_rts, 0);
  EXPECT_GE(node2_rts, exchange_end + f.params.difs);
}

TEST(Dcf, PercentMisbehaviorShortensAccessDelay) {
  // Two identical setups; one sender fully misbehaves (PM=100).
  auto run_one = [](bool misbehave) {
    MacFixture f({{0, 0}, {200, 0}});
    if (misbehave) {
      f.macs[0]->set_backoff_policy(std::make_unique<PercentMisbehavior>(100.0));
    }
    FrameLog log;
    f.macs[1]->add_observer(&log);
    f.macs[0]->enqueue(1, 512, 1);
    f.sim.run_until(1 * kSecond);
    return log.entries.at(0).start;
  };

  // Seeded PRS for node 0, offset 0, attempt 1 — find a seed-independent
  // truth: misbehaving access happens exactly at DIFS.
  DcfParams params;
  EXPECT_EQ(run_one(true), params.difs);
  EXPECT_GE(run_one(false), params.difs);
}

TEST(Dcf, TwoContendersBothEventuallySucceed) {
  MacFixture f({{0, 0}, {200, 0}, {100, 170}});
  for (int i = 0; i < 20; ++i) {
    f.macs[0]->enqueue(1, 512, 1000 + i);
    f.macs[2]->enqueue(1, 512, 2000 + i);
  }
  f.sim.run_until(10 * kSecond);
  EXPECT_EQ(f.listeners[0]->sent, 20);
  EXPECT_EQ(f.listeners[2]->sent, 20);
  EXPECT_EQ(f.listeners[1]->delivered, 40);
}

TEST(Dcf, MisbehaverStarvesHonestContender) {
  // Head-to-head saturation: a PM=95 attacker and an honest node both
  // saturate toward the same receiver; the attacker should win far more
  // airtime (the DoS effect motivating the paper).
  MacFixture f({{0, 0}, {200, 0}, {100, 170}});
  f.macs[0]->set_backoff_policy(std::make_unique<PercentMisbehavior>(95.0));
  // Keep both contenders backlogged for the whole run.
  std::uint64_t next_id = 1;
  std::function<void()> refill = [&] {
    for (int i = 0; i < 20; ++i) {
      f.macs[0]->enqueue(1, 512, next_id++);
      f.macs[2]->enqueue(1, 512, next_id++);
    }
    if (f.sim.now() < 5 * kSecond) f.sim.after(50 * kMillisecond, refill);
  };
  f.sim.at(0, refill);
  f.sim.run_until(5 * kSecond);

  const double attacker = static_cast<double>(f.listeners[0]->sent);
  const double honest = static_cast<double>(f.listeners[2]->sent);
  // The attacker grabs the channel almost every time; at PM=95 the honest
  // contender can be starved outright (the DoS the paper motivates with).
  EXPECT_GT(attacker, 200.0);
  EXPECT_GT(attacker, 5.0 * std::max(honest, 1.0));
}


TEST(DcfParams, NavResetDelay) {
  DcfParams p;
  EXPECT_EQ(p.nav_reset_delay(), 2 * p.sifs + p.cts_airtime() + 2 * p.slot_time);
}

TEST(Dcf, NavResetRecoversFromDeadRtsReservation) {
  // Node 0's RTS to an out-of-range destination reserves the medium for a
  // full exchange in node 2's NAV. With the NAV-reset rule, node 2 must be
  // able to transmit long before that reservation would have expired.
  MacFixture f({{0, 0}, {600, 0}, {200, 0}});
  FrameLog log;
  f.macs[0]->add_observer(&log);  // node 0 hears node 2's RTS

  f.macs[0]->enqueue(1, 512, 1);   // doomed exchange, NAV pollution only
  f.sim.at(600 * kMicrosecond, [&] { f.macs[2]->enqueue(0, 512, 2); });
  f.sim.run_until(3 * kSecond);

  // Find node 2's first RTS. Without NAV reset it would start only after
  // node 0's first RTS duration (~3.4 ms of NAV) plus contention; with the
  // reset it starts much earlier.
  SimTime first_rts2 = 0;
  SimTime first_rts0_end = 0;
  for (const auto& e : log.entries) {
    if (e.frame.type == FrameType::kRts && e.frame.transmitter == 2 &&
        first_rts2 == 0) {
      first_rts2 = e.start;
    }
  }
  // Node 0's own RTS is not in its observer log start..; reconstruct:
  // its first RTS ended at most difs + CWmin slots + airtime after t=0.
  first_rts0_end = f.params.difs + 31 * f.params.slot_time + f.params.rts_airtime();
  ASSERT_GT(first_rts2, 0);
  const Frame dummy_data = make_data(0, 1, 512, 1, f.params);
  const Frame dummy_rts = make_rts(0, 1, dummy_data, 0, 1, f.params);
  // NAV reset bound: reset delay + DIFS + full CWmin back-off + slack is
  // still far less than the stale reservation (dummy_rts.duration ~ 3.4 ms).
  EXPECT_LT(first_rts2, first_rts0_end + f.params.nav_reset_delay() +
                            f.params.difs + 32 * f.params.slot_time +
                            1 * kMillisecond);
  EXPECT_GT(dummy_rts.duration, 2900 * kMicrosecond);  // sanity: reservation is long
}

TEST(Dcf, ReceiverDeclinesRtsWhileOwingAnExchange) {
  // Node 1 is mid-exchange with node 0 when node 2's RTS arrives; node 1
  // must not CTS node 2 until the first exchange completes, and both
  // packets are still delivered eventually.
  MacFixture f({{0, 0}, {200, 0}, {100, 170}});
  f.macs[0]->enqueue(1, 512, 1);
  // Node 2 cannot hear node 0 starting? It can (197 m). Force the overlap
  // tighter: enqueue during the RTS itself.
  f.sim.at(100 * kMicrosecond, [&] { f.macs[2]->enqueue(1, 512, 2); });
  f.sim.run_until(3 * kSecond);
  EXPECT_EQ(f.listeners[1]->delivered, 2);
  EXPECT_EQ(f.macs[1]->stats().packets_delivered, 2u);
}

TEST(Dcf, RetryCheaterTimingMatchesItsAnnouncement) {
  // NoExponentialBackoff + StuckAttemptAnnounce: the used back-off equals
  // the dictated value for the *announced* attempt (1), so pure timing
  // verification cannot distinguish it; the MD/attempt check must.
  DcfParams params;
  VerifiableBackoff prs(7, params);
  NoExponentialBackoff policy(params.cw_min);
  StuckAttemptAnnounce announce;
  for (std::uint64_t i = 0; i < 200; ++i) {
    BackoffContext ctx;
    ctx.seq_index = i;
    ctx.attempt = 1 + (i % 6);
    ctx.raw_prs_value = prs.raw_value(i);
    ctx.dictated_slots = prs.dictated_slots(i, ctx.attempt);
    const auto announced = announce.announced({i, ctx.attempt});
    EXPECT_EQ(policy.used_slots(ctx),
              prs.dictated_slots(announced.seq_off, announced.attempt));
  }
}


TEST(Dcf, BroadcastAndUnicastInterleaveCleanly) {
  MacFixture f({{0, 0}, {200, 0}, {100, 170}});
  f.macs[0]->enqueue(kBroadcastNode, 64, 1);
  f.macs[0]->enqueue(1, 512, 2);
  f.macs[0]->enqueue(kBroadcastNode, 64, 3);
  f.macs[0]->enqueue(2, 512, 4);
  f.sim.run_until(2 * kSecond);

  EXPECT_EQ(f.macs[0]->stats().broadcasts_sent, 2u);
  EXPECT_EQ(f.macs[0]->stats().packets_acked, 4u);  // all four completed
  EXPECT_EQ(f.listeners[1]->delivered, 3);  // 2 broadcasts + 1 unicast
  EXPECT_EQ(f.listeners[2]->delivered, 3);
  // Unicasts used RTS; broadcasts did not.
  EXPECT_EQ(f.macs[0]->stats().rts_sent, 2u);
}

TEST(Dcf, EnqueueFramePreservesL3Header) {
  MacFixture f({{0, 0}, {200, 0}});
  Frame data = make_data(0, 1, 256, 99, f.params);
  data.l3 = L3Type::kAodvRrep;
  data.net_source = 7;
  data.net_destination = 9;
  data.aodv.hop_count = 3;

  struct Capture : MacListener {
    Frame last;
    void on_delivered(const Frame& d, SimTime) override { last = d; }
    void on_sent(const Frame&, SimTime) override {}
    void on_dropped(const Frame&, DropReason) override {}
  } capture;
  f.macs[1]->set_listener(&capture);

  EXPECT_TRUE(f.macs[0]->enqueue_frame(data));
  f.sim.run_until(1 * kSecond);

  EXPECT_EQ(capture.last.l3, L3Type::kAodvRrep);
  EXPECT_EQ(capture.last.net_source, 7u);
  EXPECT_EQ(capture.last.net_destination, 9u);
  EXPECT_EQ(capture.last.aodv.hop_count, 3u);
  EXPECT_EQ(capture.last.transmitter, 0u);  // overwritten by the MAC
}

TEST(Dcf, ContentionWindowResetsAfterSuccess) {
  // Drive one packet through retries (unreachable), then a successful one:
  // the successful packet's first attempt must announce Attempt# 1 again
  // and draw from CWmin.
  MacFixture f({{0, 0}, {600, 0}, {200, 0}});
  FrameLog log;
  f.macs[2]->add_observer(&log);

  f.macs[0]->enqueue(1, 512, 1);  // fails: 600 m away
  f.sim.run_until(3 * kSecond);
  f.macs[0]->enqueue(2, 512, 2);  // succeeds: 200 m away
  f.sim.run_until(5 * kSecond);

  int max_attempt_seen = 0;
  std::uint8_t last_attempt = 0;
  for (const auto& e : log.entries) {
    if (e.frame.type != FrameType::kRts || e.frame.transmitter != 0) continue;
    max_attempt_seen = std::max<int>(max_attempt_seen, e.frame.attempt);
    last_attempt = e.frame.attempt;
  }
  EXPECT_EQ(max_attempt_seen, static_cast<int>(f.params.retry_limit));
  EXPECT_EQ(last_attempt, 1);  // fresh packet, fresh attempt counter
  EXPECT_EQ(f.listeners[2]->delivered, 1);
}

TEST(Dcf, DuplicateDataIsAckedButDeliveredOnce) {
  // Force a duplicate by losing the ACK: receiver at the edge of a hidden
  // jammer is hard to set up deterministically, so test the dedup cache
  // directly through two enqueues of the same payload identity.
  MacFixture f({{0, 0}, {200, 0}});
  f.macs[0]->enqueue(1, 512, 42);
  f.sim.run_until(1 * kSecond);
  f.macs[0]->enqueue(1, 512, 42);  // same payload id resent by the app
  f.sim.run_until(2 * kSecond);

  // MAC-level dedup: the second copy is ACKed but not delivered again.
  EXPECT_EQ(f.macs[0]->stats().packets_acked, 2u);
  EXPECT_EQ(f.macs[1]->stats().packets_delivered, 1u);
  EXPECT_EQ(f.macs[1]->stats().duplicate_data, 1u);
  EXPECT_EQ(f.listeners[1]->delivered, 1);
}

TEST(Dcf, PercentMisbehaviorZeroMatchesHonestTiming) {
  auto first_rts_time = [](bool pm_zero) {
    MacFixture f({{0, 0}, {200, 0}});
    if (pm_zero) {
      f.macs[0]->set_backoff_policy(std::make_unique<PercentMisbehavior>(0.0));
    }
    FrameLog log;
    f.macs[1]->add_observer(&log);
    f.macs[0]->enqueue(1, 512, 1);
    f.sim.run_until(1 * kSecond);
    return log.entries.at(0).start;
  };
  EXPECT_EQ(first_rts_time(false), first_rts_time(true));
}

}  // namespace
}  // namespace manet::mac
