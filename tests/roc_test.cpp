// ROC / time-to-detection scoring (src/detect/roc.*): synthetic decision
// streams with known answers, threshold monotonicity, the attacker-name
// vocabulary, and thread-count invariance of an end-to-end scored sweep.
#include <gtest/gtest.h>

#include <vector>

#include "detect/roc.hpp"
#include "exp/engine.hpp"
#include "util/config.hpp"

namespace manet::detect {
namespace {

WindowResult window(double at_s, double p_less, bool deterministic = false) {
  WindowResult w;
  w.at = seconds_to_time(at_s);
  w.p_less = p_less;
  w.statistical_flag = false;  // ignored by the scorer: thresholds re-derive
  w.deterministic_flag = deterministic;
  return w;
}

TEST(RocScoring, SyntheticStreamsScoreExactly) {
  // Two attack trials: one flags its 2nd window (p = 0.004 at t = 12 s),
  // one never crosses any swept threshold. One honest trial with a single
  // borderline window (p = 0.04).
  DetectionResult attack;
  attack.trial_logs = {
      {window(11.0, 0.5), window(12.0, 0.004), window(13.0, 0.2)},
      {window(11.5, 0.6), window(12.5, 0.3)},
  };
  DetectionResult honest;
  honest.trial_logs = {{window(11.0, 0.9), window(12.0, 0.04)}};

  const double warmup_s = 10.0;
  const auto curve =
      score_roc_curve(attack, honest, {0.01, 0.05}, warmup_s);

  ASSERT_EQ(curve.points.size(), 2u);
  const auto& tight = curve.points[0];
  EXPECT_EQ(tight.threshold, 0.01);
  EXPECT_EQ(tight.attack_windows, 5u);
  EXPECT_EQ(tight.attack_flagged, 1u);
  EXPECT_EQ(tight.honest_windows, 2u);
  EXPECT_EQ(tight.honest_flagged, 0u);
  EXPECT_DOUBLE_EQ(tight.detection_rate, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(tight.false_alarm_rate, 0.0);
  EXPECT_EQ(tight.trials, 2u);
  EXPECT_EQ(tight.detected_trials, 1u);
  ASSERT_EQ(tight.ttd_s.size(), 1u);
  EXPECT_DOUBLE_EQ(tight.ttd_s[0], 2.0);  // 12 s close - 10 s warm-up
  EXPECT_DOUBLE_EQ(tight.median_ttd_s, 2.0);

  const auto& loose = curve.points[1];
  EXPECT_EQ(loose.attack_flagged, 1u);   // only the p = 0.004 window
  EXPECT_EQ(loose.honest_flagged, 1u);   // 0.04 < 0.05
  EXPECT_DOUBLE_EQ(loose.false_alarm_rate, 0.5);
}

TEST(RocScoring, DeterministicFlagsCountAtEveryThreshold) {
  DetectionResult attack;
  attack.trial_logs = {{window(10.5, 1.0, /*deterministic=*/true)}};
  DetectionResult honest;
  honest.trial_logs = {{window(10.5, 1.0)}};

  const auto curve = score_roc_curve(attack, honest, {0.001, 0.1}, 10.0);
  for (const auto& p : curve.points) {
    EXPECT_EQ(p.attack_flagged, 1u) << "threshold " << p.threshold;
    EXPECT_EQ(p.detected_trials, 1u);
    EXPECT_EQ(p.honest_flagged, 0u);
  }
}

TEST(RocScoring, PerfectSeparationHasUnitAucAndChanceHasHalf) {
  DetectionResult attack;
  attack.trial_logs = {{window(11.0, 0.0001), window(12.0, 0.0002)}};
  DetectionResult honest;
  honest.trial_logs = {{window(11.0, 0.9), window(12.0, 0.8)}};
  const auto perfect = score_roc_curve(attack, honest, {0.001, 0.5}, 10.0);
  EXPECT_DOUBLE_EQ(perfect.auc, 1.0);

  // Identical streams on both sides: every threshold lands on the
  // diagonal, so the trapezoid area is exactly 1/2.
  DetectionResult same;
  same.trial_logs = {{window(11.0, 0.3), window(12.0, 0.7)}};
  const auto chance =
      score_roc_curve(same, same, {0.1, 0.5, 0.9}, 10.0);
  EXPECT_DOUBLE_EQ(chance.auc, 0.5);
}

TEST(RocScoring, RatesAreMonotoneInTheThreshold) {
  // Mixed stream with many distinct p-values.
  DetectionResult attack, honest;
  std::vector<WindowResult> a, h;
  for (int i = 0; i < 40; ++i) {
    a.push_back(window(11.0 + 0.1 * i, (i % 10) * 0.011));
    h.push_back(window(11.0 + 0.1 * i, 1.0 - (i % 13) * 0.07));
  }
  attack.trial_logs = {a};
  honest.trial_logs = {h};

  const std::vector<double> thresholds = {0.001, 0.01, 0.02, 0.05, 0.1, 0.5};
  const auto curve = score_roc_curve(attack, honest, thresholds, 10.0);
  ASSERT_EQ(curve.points.size(), thresholds.size());
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].detection_rate, curve.points[i - 1].detection_rate);
    EXPECT_GE(curve.points[i].false_alarm_rate,
              curve.points[i - 1].false_alarm_rate);
    EXPECT_GE(curve.points[i].detected_trials, curve.points[i - 1].detected_trials);
  }
}

TEST(AttackerNames, VocabularyMapsOntoSpecs) {
  AttackerTuning tuning;
  tuning.pm = 77;
  tuning.group = 4;
  tuning.probation_s = 12.0;
  tuning.flood_pps = 250.0;

  EXPECT_EQ(attacker_spec_from_name("honest", tuning).kind, AttackerKind::kNone);
  EXPECT_EQ(attacker_spec_from_name("honest", tuning).pm, 0.0);

  const auto pm = attacker_spec_from_name("pm65", tuning);
  EXPECT_EQ(pm.kind, AttackerKind::kPm);
  EXPECT_EQ(pm.pm, 65.0);

  const auto colluding = attacker_spec_from_name("colluding", tuning);
  EXPECT_EQ(colluding.kind, AttackerKind::kColluding);
  EXPECT_EQ(colluding.pm, 77.0);
  EXPECT_EQ(colluding.group, 4u);

  const auto adaptive = attacker_spec_from_name("adaptive", tuning);
  EXPECT_EQ(adaptive.kind, AttackerKind::kAdaptive);
  EXPECT_EQ(adaptive.probation_s, 12.0);

  EXPECT_EQ(attacker_spec_from_name("sybil", tuning).kind, AttackerKind::kSybil);

  const auto flood = attacker_spec_from_name("rts_flood", tuning);
  EXPECT_EQ(flood.kind, AttackerKind::kRtsFlood);
  EXPECT_EQ(flood.flood_pps, 250.0);

  EXPECT_EQ(default_attacker_names().size(), 6u);
}

TEST(AttackerNames, RejectsUnknownAndMalformedNames) {
  const AttackerTuning tuning;
  for (const char* bad : {"bogus", "pm", "pm1x0", "pm101", "pm-5", "PM50", ""}) {
    EXPECT_THROW(attacker_spec_from_name(bad, tuning), util::ConfigError)
        << "name '" << bad << "'";
  }
}

TEST(RocSweep, BitIdenticalAcrossEngineThreadCounts) {
  net::ScenarioConfig scenario;
  scenario.grid_rows = 3;
  scenario.grid_cols = 4;
  scenario.num_flows = 5;
  scenario.sim_seconds = 8.0;
  scenario.seed = 77;

  AttackerTuning tuning;
  tuning.pm = 90;
  std::vector<MultiDetectionConfig> points;
  for (const char* name : {"honest", "pm90", "colluding"}) {
    MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = 25;
    cfg.attacker = attacker_spec_from_name(name, tuning);
    MonitorConfig m;
    m.sample_size = 10;
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 3.0;
    m.fixed_contenders = 8.0;
    cfg.monitors = {m};
    cfg.collect_windows = true;
    points.push_back(cfg);
  }

  exp::Engine serial(1), parallel(4);
  const auto one = run_multi_detection_sweep(points, 2, serial);
  const auto four = run_multi_detection_sweep(points, 2, parallel);

  const std::vector<double> thresholds = {0.001, 0.01, 0.1};
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t p = 1; p < one.size(); ++p) {
    const auto c1 = score_roc_curve(one[p].per_config[0], one[0].per_config[0],
                                    thresholds, points[p].warmup_s);
    const auto c4 = score_roc_curve(four[p].per_config[0], four[0].per_config[0],
                                    thresholds, points[p].warmup_s);
    EXPECT_EQ(c1.auc, c4.auc) << "point " << p;
    ASSERT_EQ(c1.points.size(), c4.points.size());
    for (std::size_t i = 0; i < c1.points.size(); ++i) {
      EXPECT_EQ(c1.points[i].detection_rate, c4.points[i].detection_rate);
      EXPECT_EQ(c1.points[i].false_alarm_rate, c4.points[i].false_alarm_rate);
      EXPECT_EQ(c1.points[i].ttd_s, c4.points[i].ttd_s);
    }
    // The underlying decision streams match element-wise too.
    ASSERT_EQ(one[p].per_config[0].trial_logs.size(),
              four[p].per_config[0].trial_logs.size());
    for (std::size_t t = 0; t < one[p].per_config[0].trial_logs.size(); ++t) {
      EXPECT_EQ(one[p].per_config[0].trial_logs[t],
                four[p].per_config[0].trial_logs[t])
          << "point " << p << " trial " << t;
    }
  }
}

}  // namespace
}  // namespace manet::detect
