#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace manet::sim {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  EXPECT_TRUE(q.pending(id));
  q.cancel(id);
  EXPECT_FALSE(q.pending(id));
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnBogusIds) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.cancel(id);
  q.cancel(id);              // double cancel
  q.cancel(kInvalidEvent);   // invalid
  q.cancel(99999);           // never issued
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, CancelAfterDispatchIsNoOp) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.pop().fn();   // dispatches a
  q.cancel(a);    // must not disturb the remaining event
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 2);
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(5, [] {});
  q.schedule(6, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SlotReuseInvalidatesStaleIds) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  q.cancel(a);
  const EventId b = q.schedule(11, [] {});  // may reuse a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.pending(a));
  EXPECT_TRUE(q.pending(b));
  q.cancel(a);  // the stale id must not kill the reused slot
  EXPECT_TRUE(q.pending(b));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, b);
}

TEST(EventQueue, HeapStaysBoundedWhenCancelsDominate) {
  // The MAC's back-off pattern: a standing population of timers where
  // nearly every scheduled event is cancelled and replaced before firing.
  // Lazy cancellation must not let dead heap entries accumulate.
  EventQueue q;
  manet::util::Xoshiro256ss rng(99);
  std::vector<EventId> live(64, kInvalidEvent);
  SimTime t = 0;
  for (auto& id : live) id = q.schedule(++t, [] {});
  for (int i = 0; i < 100000; ++i) {
    const std::size_t k = rng.uniform_int(live.size());
    q.cancel(live[k]);
    live[k] = q.schedule(++t, [] {});
  }
  EXPECT_EQ(q.size(), live.size());
  // Compaction keeps dead entries at most on par with live ones (modulo
  // the small-heap threshold below which compaction never bothers).
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 64);
  // And exactly the live set dispatches, in time order.
  std::size_t popped = 0;
  SimTime prev = 0;
  while (!q.empty()) {
    const auto d = q.pop();
    EXPECT_GT(d.time, prev);
    prev = d.time;
    ++popped;
  }
  EXPECT_EQ(popped, live.size());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.at(100, [&] { times.push_back(sim.now()); });
  sim.after(50, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.dispatched_events(), 2u);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);  // clock advances even past last event
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(10, recurse);
  };
  sim.at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(sim.at(100, [] {}));  // "now" is allowed
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] { ++fired; });
  sim.at(2, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(3, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  // A later run resumes with the remaining events.
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelViaSimulator) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  util::Xoshiro256ss rng(99);
  for (int i = 0; i < 20000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.uniform_int(1000000));
    sim.at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.dispatched_events(), 20000u);
}

}  // namespace
}  // namespace manet::sim
