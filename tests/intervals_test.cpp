#include <gtest/gtest.h>

#include "util/intervals.hpp"
#include "util/rng.hpp"

namespace manet::util {
namespace {

TEST(IntervalSet, EmptyAndDegenerateAdds) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_length(), 0);
  s.add(5, 5);    // empty
  s.add(9, 3);    // inverted
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesOverlappingAndAdjacent) {
  IntervalSet s;
  s.add(0, 10);
  s.add(5, 15);   // overlap
  s.add(15, 20);  // adjacent
  s.add(30, 40);  // disjoint
  const auto& iv = s.intervals();
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{0, 20}));
  EXPECT_EQ(iv[1], (Interval{30, 40}));
  EXPECT_EQ(s.total_length(), 30);
}

TEST(IntervalSet, OrderIndependent) {
  IntervalSet a, b;
  a.add(0, 5);
  a.add(10, 15);
  a.add(3, 12);
  b.add(3, 12);
  b.add(10, 15);
  b.add(0, 5);
  EXPECT_EQ(a.intervals(), b.intervals());
}

TEST(IntervalSet, Clamped) {
  IntervalSet s;
  s.add(0, 10);
  s.add(20, 30);
  const IntervalSet c = s.clamped(5, 25);
  ASSERT_EQ(c.intervals().size(), 2u);
  EXPECT_EQ(c.intervals()[0], (Interval{5, 10}));
  EXPECT_EQ(c.intervals()[1], (Interval{20, 25}));
  EXPECT_TRUE(s.clamped(11, 19).empty());
}

TEST(IntervalSet, IntersectionLength) {
  IntervalSet a, b;
  a.add(0, 10);
  a.add(20, 30);
  b.add(5, 25);
  EXPECT_EQ(a.intersection_length(b), 5 + 5);
  EXPECT_EQ(b.intersection_length(a), 10);  // symmetric
  IntervalSet empty;
  EXPECT_EQ(a.intersection_length(empty), 0);
}

TEST(IntervalSet, ComplementWithin) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  const auto gaps = s.complement_within(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Interval{0, 10}));
  EXPECT_EQ(gaps[1], (Interval{20, 30}));
  EXPECT_EQ(gaps[2], (Interval{40, 50}));

  // Window fully covered: no gaps.
  EXPECT_TRUE(s.complement_within(12, 18).empty());
  // Window outside all intervals: one gap.
  const auto outside = s.complement_within(100, 110);
  ASSERT_EQ(outside.size(), 1u);
  EXPECT_EQ(outside[0], (Interval{100, 110}));
  // Interval overlapping window start.
  const auto partial = s.complement_within(15, 35);
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0], (Interval{20, 30}));
}

TEST(IntervalSet, MergeSets) {
  IntervalSet a, b;
  a.add(0, 10);
  b.add(5, 20);
  b.add(40, 50);
  a.merge(b);
  EXPECT_EQ(a.total_length(), 20 + 10);
  ASSERT_EQ(a.intervals().size(), 2u);
}

TEST(IntervalSet, PropertyComplementPartitionsWindow) {
  // For random interval sets, covered + gaps == window length exactly.
  Xoshiro256ss rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet s;
    for (int i = 0; i < 20; ++i) {
      const SimTime lo = static_cast<SimTime>(rng.uniform_int(1000));
      s.add(lo, lo + static_cast<SimTime>(rng.uniform_int(80)));
    }
    const SimTime w0 = 100, w1 = 900;
    SimDuration gap_total = 0;
    for (const Interval& g : s.complement_within(w0, w1)) {
      gap_total += g.length();
      // Gaps must not intersect the set.
      IntervalSet gset;
      gset.add(g.lo, g.hi);
      EXPECT_EQ(s.intersection_length(gset), 0);
    }
    EXPECT_EQ(gap_total + s.clamped(w0, w1).total_length(), w1 - w0);
  }
}

TEST(IntervalSet, PropertyInclusionExclusion) {
  // |A| + |B| == |A ∪ B| + |A ∩ B| for random sets.
  Xoshiro256ss rng(78);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet a, b;
    for (int i = 0; i < 10; ++i) {
      SimTime lo = static_cast<SimTime>(rng.uniform_int(500));
      a.add(lo, lo + static_cast<SimTime>(rng.uniform_int(60)));
      lo = static_cast<SimTime>(rng.uniform_int(500));
      b.add(lo, lo + static_cast<SimTime>(rng.uniform_int(60)));
    }
    IntervalSet u = a;
    u.merge(b);
    EXPECT_EQ(a.total_length() + b.total_length(),
              u.total_length() + a.intersection_length(b));
  }
}

}  // namespace
}  // namespace manet::util
