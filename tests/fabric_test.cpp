// Tests for the distributed experiment fabric (src/exp/): shard ranges,
// the binary columnar sink and its reader, checkpoint journals with
// kill-and-resume byte equivalence, the keyed artifact store, and the
// buffered JSON sink's record-count flush trigger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/artifact_store.hpp"
#include "exp/checkpoint.hpp"
#include "exp/columnar.hpp"
#include "exp/fabric.hpp"
#include "exp/shard.hpp"
#include "exp/sink.hpp"
#include "util/config.hpp"

namespace manet::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "fabric_test_" + name;
}

// ---------------------------------------------------------------- shards

TEST(ShardSpec, ParsesAndPrints) {
  const ShardSpec s = ShardSpec::parse("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.str(), "2/5");
  EXPECT_TRUE(ShardSpec::parse("0/1").is_serial());
  EXPECT_FALSE(s.is_serial());
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "/", "1", "1/", "/4", "4/4", "5/4", "-1/4",
                          "a/4", "1/b", "1/0", "0/0", "1/4x", "1 /4"}) {
    EXPECT_THROW(ShardSpec::parse(bad), util::ConfigError) << bad;
  }
}

TEST(ShardSpec, RangesTileBalancedAndOrdered) {
  for (std::uint64_t cells : {0ull, 1ull, 5ull, 16ull, 97ull}) {
    for (std::uint32_t n : {1u, 2u, 3u, 7u, 16u, 50u}) {
      std::uint64_t expect = 0;
      std::uint64_t min_size = cells + 1;
      std::uint64_t max_size = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const ShardSpec s{i, n};
        ASSERT_EQ(s.begin(cells), expect) << cells << " " << s.str();
        ASSERT_LE(s.begin(cells), s.end(cells));
        const std::uint64_t size = s.end(cells) - s.begin(cells);
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
        expect = s.end(cells);
      }
      EXPECT_EQ(expect, cells);
      EXPECT_LE(max_size - min_size, 1u) << cells << "/" << n;
      if (n > cells) {  // trailing shards own empty ranges, not errors
        const ShardSpec last{n - 1, n};
        EXPECT_EQ(last.begin(cells), last.end(cells));
      }
    }
  }
}

// ------------------------------------------------------------- columnar

Record cell_record(std::uint64_t cell) {
  Record r;
  r.add("bench", "fabric_test")
      .add("cell", cell)
      .add("value", 0.25 * static_cast<double>(cell) + 0.1)
      .add("offset", static_cast<std::int64_t>(17 - 5 * (cell % 8)))
      .add("even", cell % 2 == 0);
  return r;
}

// A second shape so schema registration and block switching are exercised.
Record detail_record(std::uint64_t cell) {
  Record r;
  r.add("bench", "fabric_test")
      .add("cell", cell)
      .add("note", cell % 2 == 0 ? "even-cell" : "odd-cell");
  return r;
}

void emit_cells(ColumnarFileSink& sink, std::uint64_t first,
                std::uint64_t last) {
  for (std::uint64_t cell = first; cell < last; ++cell) {
    sink.begin_cell(cell);
    sink.record(cell_record(cell));
    if (cell % 3 == 0) sink.record(detail_record(cell));
  }
}

ColumnarMeta test_meta(std::uint64_t cells) {
  ColumnarMeta meta;
  meta.sweep = "sweep1|fabric_test|x=1";
  meta.bench = "fabric_test";
  meta.total_cells = cells;
  meta.cell_begin = 0;
  meta.cell_end = cells;
  return meta;
}

TEST(Columnar, RoundTripsRecordsExactly) {
  const std::string path = temp_path("roundtrip.mcol");
  const std::uint64_t cells = 2 * ColumnarFileSink::kBlockRecords + 37;
  {
    ColumnarFileSink sink(path, test_meta(cells));
    emit_cells(sink, 0, cells);
  }
  const ColumnarFile file = read_columnar_file(path);
  EXPECT_EQ(file.meta.sweep, "sweep1|fabric_test|x=1");
  EXPECT_EQ(file.meta.bench, "fabric_test");
  EXPECT_EQ(file.meta.total_cells, cells);
  EXPECT_EQ(file.meta.cell_begin, 0u);
  EXPECT_EQ(file.meta.cell_end, cells);

  std::size_t i = 0;
  for (std::uint64_t cell = 0; cell < cells; ++cell) {
    ASSERT_LT(i, file.records.size());
    EXPECT_EQ(file.records[i].first, cell);
    EXPECT_EQ(file.records[i].second.to_json(), cell_record(cell).to_json());
    ++i;
    if (cell % 3 == 0) {
      ASSERT_LT(i, file.records.size());
      EXPECT_EQ(file.records[i].first, cell);
      EXPECT_EQ(file.records[i].second.to_json(),
                detail_record(cell).to_json());
      ++i;
    }
  }
  EXPECT_EQ(i, file.records.size());
  std::remove(path.c_str());
}

TEST(Columnar, PreservesNonFiniteDoublesUnlikeJson) {
  const std::string path = temp_path("nonfinite.mcol");
  Record r;
  r.add("nan", std::nan("")).add("inf", 1.0 / 0.0);
  {
    ColumnarFileSink sink(path, test_meta(1));
    sink.begin_cell(0);
    sink.record(r);
  }
  const ColumnarFile file = read_columnar_file(path);
  ASSERT_EQ(file.records.size(), 1u);
  // JSON renders non-finite as null; the binary codec must still agree.
  EXPECT_EQ(file.records[0].second.to_json(), r.to_json());
  std::remove(path.c_str());
}

TEST(Columnar, RejectsCorruptTruncatedAndForeignFiles) {
  const std::string path = temp_path("corrupt.mcol");
  {
    ColumnarFileSink sink(path, test_meta(40));
    emit_cells(sink, 0, 40);
  }
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 64u);

  // Flip one payload byte: the block CRC must catch it.
  std::string corrupt = good;
  corrupt[good.size() - 10] ^= 0x40;
  spit(path, corrupt);
  EXPECT_THROW(read_columnar_file(path), std::runtime_error);

  // Chop the tail mid-block: truncation must be detected, not ignored.
  spit(path, good.substr(0, good.size() - 5));
  EXPECT_THROW(read_columnar_file(path), std::runtime_error);

  // Not a columnar file at all.
  spit(path, "[\n{\"bench\": \"fabric_test\"}\n]\n");
  EXPECT_THROW(read_columnar_file(path), std::runtime_error);

  EXPECT_THROW(read_columnar_file(path + ".does-not-exist"),
               std::runtime_error);

  spit(path, good);
  EXPECT_NO_THROW(read_columnar_file(path));
  std::remove(path.c_str());
}

TEST(Columnar, ResumeReproducesUninterruptedBytes) {
  const std::string ref_path = temp_path("resume_ref.mcol");
  const std::string res_path = temp_path("resume_res.mcol");
  const std::uint64_t cells = ColumnarFileSink::kBlockRecords + 100;
  const std::uint64_t cut = 300;

  // Uninterrupted reference. sync() at the cut so the flush cadence
  // matches the interrupted attempt (flush points are part of the bytes).
  {
    ColumnarFileSink sink(ref_path, test_meta(cells));
    emit_cells(sink, 0, cut);
    sink.sync();
    emit_cells(sink, cut, cells);
  }

  // Attempt 1: durable through `cut`, then a partial tail (as a killed
  // process would leave) that resume must discard.
  std::uint64_t offset = 0;
  {
    ColumnarFileSink sink(res_path, test_meta(cells));
    emit_cells(sink, 0, cut);
    offset = sink.sync();
    emit_cells(sink, cut, cut + 40);  // never synced: lost on the "crash"
  }
  ASSERT_GT(offset, 0u);

  // Attempt 2: reopen at the durable offset and finish the shard.
  {
    ColumnarFileSink sink(res_path, test_meta(cells), offset);
    emit_cells(sink, cut, cells);
  }
  EXPECT_EQ(slurp(res_path), slurp(ref_path));

  // A resume against a different sweep must be refused.
  ColumnarMeta other = test_meta(cells);
  other.sweep = "sweep1|fabric_test|x=2";
  EXPECT_THROW(ColumnarFileSink(res_path, other, offset), std::runtime_error);
  // ... as must an offset beyond the file.
  EXPECT_THROW(ColumnarFileSink(res_path, test_meta(cells), 1u << 30),
               std::runtime_error);

  std::remove(ref_path.c_str());
  std::remove(res_path.c_str());
}

// ----------------------------------------------------------- checkpoint

TEST(CheckpointJournal, RoundTripsAndPinsIdentity) {
  const std::string path = temp_path("journal");
  const CheckpointJournal journal(path, "sweep1|fabric_test|shard=0/2");
  EXPECT_FALSE(journal.load().has_value());

  journal.commit({12, 3456});
  const auto state = journal.load();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->cells_done, 12u);
  EXPECT_EQ(state->sink_offset, 3456u);

  // Same path, different (sweep, shard) identity: stale journal refused.
  const CheckpointJournal other(path, "sweep1|fabric_test|shard=1/2");
  EXPECT_THROW(other.load(), std::runtime_error);

  // Garbage content refused.
  spit(path, "not a journal\n");
  EXPECT_THROW(journal.load(), std::runtime_error);

  journal.remove();
  EXPECT_FALSE(journal.load().has_value());
}

// ------------------------------------------------------- artifact store

TEST(ArtifactStore, DisabledStoreComputesEveryTime) {
  ::unsetenv("MANET_ARTIFACTS");
  const ArtifactStore store;
  EXPECT_FALSE(store.enabled());
  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(store.entry_path("k"), "");
  int computes = 0;
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(store.get_or_compute("k",
                                   [&] {
                                     ++computes;
                                     return std::string("v");
                                   }),
              "v");
  }
  EXPECT_EQ(computes, 2);
}

TEST(ArtifactStore, ComputesOnceThenServesHits) {
  const std::string dir = temp_path("store");
  const ArtifactStore store(dir);
  ASSERT_TRUE(store.enabled());
  // The directory persists across test runs: start from a clean slate.
  for (const char* key : {"key-a", "key-b"}) {
    std::remove(store.entry_path(key).c_str());
    std::remove((store.entry_path(key) + ".lock").c_str());
  }
  EXPECT_FALSE(store.get("key-a").has_value());

  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return std::string("blob-a\x01\x02 with binary bytes");
  };
  EXPECT_EQ(store.get_or_compute("key-a", compute),
            "blob-a\x01\x02 with binary bytes");
  EXPECT_EQ(store.get_or_compute("key-a", compute),
            "blob-a\x01\x02 with binary bytes");
  EXPECT_EQ(computes, 1);

  // Distinct keys do not collide; a second store on the same dir sees the
  // entries (cross-process sharing is path-based).
  store.put("key-b", "blob-b");
  const ArtifactStore reopened(dir);
  EXPECT_EQ(reopened.get("key-a").value_or(""),
            "blob-a\x01\x02 with binary bytes");
  EXPECT_EQ(reopened.get("key-b").value_or(""), "blob-b");
  EXPECT_NE(store.entry_path("key-a"), store.entry_path("key-b"));
}

TEST(ArtifactStore, AtomicFileUpdateMergesSequentialWriters) {
  const std::string path = temp_path("merged.cache");
  std::remove(path.c_str());
  EXPECT_TRUE(atomic_file_update(
      path, [](const std::string& cur) { return cur + "line-1\n"; }));
  EXPECT_TRUE(atomic_file_update(
      path, [](const std::string& cur) { return cur + "line-2\n"; }));
  EXPECT_EQ(slurp(path), "line-1\nline-2\n");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// ------------------------------------------------------------ JSON sink

TEST(JsonFileSink, FlushRecordsTriggerMakesRecordsDurableEarly) {
  const std::string eager_path = temp_path("eager.json");
  const std::string lazy_path = temp_path("lazy.json");
  {
    JsonFileSink eager(eager_path, /*flush_records=*/2);
    JsonFileSink lazy(lazy_path);  // size-based flushing only
    for (std::uint64_t i = 0; i < 5; ++i) {
      eager.record(cell_record(i));
      lazy.record(cell_record(i));
    }
    // The count trigger has pushed the eager sink's records to disk while
    // the lazy sink still holds everything in its 64 KiB buffer.
    EXPECT_GT(slurp(eager_path).size(), 100u);
    EXPECT_EQ(slurp(lazy_path).size(), 0u);
  }
  // Same bytes once both sinks close: buffering must not change the text.
  EXPECT_EQ(slurp(eager_path), slurp(lazy_path));
  std::remove(eager_path.c_str());
  std::remove(lazy_path.c_str());
}

// --------------------------------------------------------------- fabric

FabricConfig fabric_config(std::uint64_t cells, const std::string& shard,
                           const std::string& tag) {
  FabricConfig config;
  config.total_cells = cells;
  config.shard = ShardSpec::parse(shard);
  config.sweep_fingerprint = "sweep1|fabric_test|x=1";
  config.bench = "fabric_test";
  config.columnar_path = temp_path(tag + ".mcol");
  return config;
}

void run_fabric(SweepFabric& fabric) {
  fabric.run([&](std::uint64_t first, std::uint64_t last) {
    for (std::uint64_t cell = first; cell < last; ++cell) {
      fabric.begin_cell(cell);
      fabric.record(cell_record(cell));
      if (cell % 3 == 0) fabric.record(detail_record(cell));
    }
  });
}

TEST(SweepFabric, ValidatesCheckpointConfig) {
  FabricConfig config = fabric_config(4, "0/1", "validate");
  config.checkpoint_path = config.columnar_path + ".ckpt";
  config.columnar_path = "";
  EXPECT_THROW(SweepFabric{config}, util::ConfigError);  // needs --columnar

  config = fabric_config(4, "0/1", "validate");
  config.checkpoint_path = config.columnar_path + ".ckpt";
  config.json_path = temp_path("validate.json");
  EXPECT_THROW(SweepFabric{config}, util::ConfigError);  // excludes --json

  config = fabric_config(4, "0/1", "validate");
  config.checkpoint_path = config.columnar_path + ".ckpt";
  config.checkpoint_cells = 0;
  EXPECT_THROW(SweepFabric{config}, util::ConfigError);
}

TEST(SweepFabric, ShardConcatenationMatchesSerial) {
  const std::uint64_t cells = 7;
  FabricConfig serial = fabric_config(cells, "0/1", "serial");
  {
    SweepFabric fabric(serial);
    run_fabric(fabric);
  }
  const ColumnarFile reference = read_columnar_file(serial.columnar_path);
  ASSERT_FALSE(reference.records.empty());

  for (std::uint32_t n : {2u, 3u, 7u, 9u}) {  // 9 > cells: empty shards
    std::vector<std::pair<std::uint64_t, Record>> merged;
    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      FabricConfig config = fabric_config(
          cells, std::to_string(i) + "/" + std::to_string(n),
          "shard_" + std::to_string(i) + "_" + std::to_string(n));
      {
        SweepFabric fabric(config);
        run_fabric(fabric);
      }
      const ColumnarFile shard = read_columnar_file(config.columnar_path);
      EXPECT_EQ(shard.meta.cell_begin, expect);
      expect = shard.meta.cell_end;
      for (const auto& rec : shard.records) merged.push_back(rec);
      std::remove(config.columnar_path.c_str());
    }
    EXPECT_EQ(expect, cells);
    ASSERT_EQ(merged.size(), reference.records.size()) << "N=" << n;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].first, reference.records[i].first);
      EXPECT_EQ(merged[i].second.to_json(),
                reference.records[i].second.to_json());
    }
  }
  std::remove(serial.columnar_path.c_str());
}

TEST(SweepFabric, KilledShardResumesToIdenticalArtifact) {
  const std::uint64_t cells = 11;

  // Uninterrupted run WITH checkpointing: the reference bytes include the
  // per-chunk flush cadence resume must reproduce.
  FabricConfig ref = fabric_config(cells, "0/1", "ckpt_ref");
  ref.checkpoint_path = ref.columnar_path + ".ckpt";
  ref.checkpoint_cells = 3;
  {
    SweepFabric fabric(ref);
    EXPECT_FALSE(fabric.resumed());
    run_fabric(fabric);
  }

  // Attempt 1 "dies" after two committed chunks (the exception models
  // SIGKILL: the journal holds 6 cells, the sink holds a partial tail).
  FabricConfig res = fabric_config(cells, "0/1", "ckpt_res");
  res.checkpoint_path = res.columnar_path + ".ckpt";
  res.checkpoint_cells = 3;
  try {
    SweepFabric fabric(res);
    std::uint64_t chunks = 0;
    fabric.run([&](std::uint64_t first, std::uint64_t last) {
      if (++chunks == 3) throw std::runtime_error("killed");
      for (std::uint64_t cell = first; cell < last; ++cell) {
        fabric.begin_cell(cell);
        fabric.record(cell_record(cell));
        if (cell % 3 == 0) fabric.record(detail_record(cell));
      }
    });
    FAIL() << "expected the simulated kill to propagate";
  } catch (const std::runtime_error&) {
  }

  // Attempt 2 resumes at the last durable chunk boundary and completes.
  {
    SweepFabric fabric(res);
    EXPECT_TRUE(fabric.resumed());
    EXPECT_EQ(fabric.resume_cell(), 6u);
    run_fabric(fabric);
  }
  EXPECT_EQ(slurp(res.columnar_path), slurp(ref.columnar_path));
  // Journals are deleted on completion.
  EXPECT_NE(slurp(res.columnar_path).size(), 0u);
  std::ifstream journal(res.checkpoint_path);
  EXPECT_FALSE(journal.good());

  std::remove(ref.columnar_path.c_str());
  std::remove(res.columnar_path.c_str());
}

}  // namespace
}  // namespace manet::exp
