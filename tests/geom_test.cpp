#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/circle.hpp"
#include "geom/region_model.hpp"
#include "geom/sampling.hpp"
#include "geom/vec2.hpp"

namespace manet::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, Arithmetic) {
  const Vec2 a{3, 4};
  const Vec2 b{1, -2};
  EXPECT_EQ((a + b), (Vec2{4, 2}));
  EXPECT_EQ((a - b), (Vec2{2, 6}));
  EXPECT_EQ((a * 2), (Vec2{6, 8}));
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(b), -5.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(4 + 36));
  const Vec2 u = a.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0, 0}));
}

TEST(Circle, ContainsAndArea) {
  const Circle c{{0, 0}, 2.0};
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_TRUE(c.contains({2, 0}));  // boundary inclusive
  EXPECT_FALSE(c.contains({2.01, 0}));
  EXPECT_NEAR(c.area(), 4 * kPi, 1e-9);
}

TEST(LensArea, DegenerateCases) {
  EXPECT_DOUBLE_EQ(lens_area(1.0, 1.0, 2.0), 0.0);   // tangent
  EXPECT_DOUBLE_EQ(lens_area(1.0, 1.0, 5.0), 0.0);   // disjoint
  EXPECT_NEAR(lens_area(1.0, 1.0, 0.0), kPi, 1e-12); // coincident
  EXPECT_NEAR(lens_area(1.0, 3.0, 0.5), kPi, 1e-12); // contained
  EXPECT_DOUBLE_EQ(lens_area(0.0, 1.0, 0.5), 0.0);   // zero radius
}

TEST(LensArea, SymmetricInRadii) {
  EXPECT_NEAR(lens_area(2.0, 3.0, 2.5), lens_area(3.0, 2.0, 2.5), 1e-12);
}

TEST(LensArea, MatchesMonteCarlo) {
  util::Xoshiro256ss rng(1);
  const Circle a{{0, 0}, 550};
  const Circle b{{240, 0}, 550};
  const double mc = monte_carlo_area(
      rng, -550, -550, 790, 550, 400000,
      [&](Vec2 p) { return a.contains(p) && b.contains(p); });
  const double exact = lens_area(550, 240);
  EXPECT_NEAR(mc / exact, 1.0, 0.02);
}

TEST(LensArea, MonotoneDecreasingInSeparation) {
  double prev = lens_area(550, 0.0);
  for (double d = 50; d < 1100; d += 50) {
    const double cur = lens_area(550, d);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(CrescentArea, ComplementsLens) {
  const Circle a{{0, 0}, 550};
  const Circle b{{240, 0}, 550};
  EXPECT_NEAR(crescent_area(a, b) + lens_area(550, 240), a.area(), 1e-6);
}

TEST(RegionModel, PaperGeometryAreasArePositiveAndConsistent) {
  const RegionModel model(240, 550);
  const RegionAreas& areas = model.areas();
  EXPECT_GT(areas.a1, 0);
  EXPECT_GT(areas.a2, 0);
  EXPECT_GT(areas.a3, 0);
  EXPECT_GT(areas.a4, 0);
  EXPECT_GT(areas.a5, 0);
  // A2 and A5 are the two crescents of equal-radius disks: equal areas.
  EXPECT_NEAR(areas.a2, areas.a5, 1e-6);
  // A3 and A4 split the lens evenly.
  EXPECT_NEAR(areas.a3, areas.a4, 1e-9);
  EXPECT_NEAR(areas.a3 + areas.a4, lens_area(550, 240), 1e-6);
  // A1 mirrors A2 by construction.
  EXPECT_NEAR(areas.a1, areas.a2, 1e-6);
}

TEST(RegionModel, ConditionalAreaFractions) {
  const RegionModel model(240, 550);
  EXPECT_NEAR(model.p_tx_in_a2() + model.p_tx_in_a1(), 1.0, 1e-12);
  EXPECT_GT(model.p_tx_in_a5(), 0.0);
  EXPECT_LT(model.p_tx_in_a5(), 1.0);
  // With a half-lens much larger than the crescent, A5/(A4+A5) < 1/2.
  EXPECT_LT(model.p_tx_in_a5(), 0.5);
}

TEST(RegionModel, ExpectedCountsScaleWithDensity) {
  const RegionModel model(240, 550);
  const double density = 1e-5;  // nodes per m^2
  EXPECT_NEAR(model.expected_n(density), model.areas().a2 * density, 1e-12);
  EXPECT_NEAR(model.expected_k(2 * density), 2 * model.expected_k(density), 1e-12);
}

TEST(RegionModel, RejectsInvalidGeometry) {
  EXPECT_THROW(RegionModel(0, 550), std::invalid_argument);
  EXPECT_THROW(RegionModel(-5, 550), std::invalid_argument);
  EXPECT_THROW(RegionModel(240, 0), std::invalid_argument);
  EXPECT_THROW(RegionModel(1200, 550), std::invalid_argument);  // > 2L
}

TEST(RegionModel, WiderSeparationGrowsExclusiveRegions) {
  const RegionModel narrow(100, 550);
  const RegionModel wide(500, 550);
  EXPECT_GT(wide.areas().a2, narrow.areas().a2);
  EXPECT_GT(wide.areas().a5, narrow.areas().a5);
  EXPECT_LT(wide.areas().a3, narrow.areas().a3);
}

TEST(Sampling, CirclePointsLieInsideAndFillIt) {
  util::Xoshiro256ss rng(5);
  const Circle c{{10, -3}, 7};
  int in_inner_half_area = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = sample_circle(rng, c);
    ASSERT_TRUE(c.contains(p));
    // Inner disk of radius r/sqrt(2) holds half the area.
    if ((p - c.center).norm2() <= c.radius * c.radius / 2) ++in_inner_half_area;
  }
  EXPECT_NEAR(in_inner_half_area / static_cast<double>(n), 0.5, 0.01);
}

TEST(Sampling, RectPointsAreInBounds) {
  util::Xoshiro256ss rng(6);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p = sample_rect(rng, -1, 2, 4, 9);
    EXPECT_GE(p.x, -1);
    EXPECT_LT(p.x, 4);
    EXPECT_GE(p.y, 2);
    EXPECT_LT(p.y, 9);
  }
}

}  // namespace
}  // namespace manet::geom
